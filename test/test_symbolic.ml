module Netlist = Circuit.Netlist

let rc_lowpass ~r ~c () =
  Netlist.empty ~title:"rc lowpass" ()
  |> Netlist.vsource ~name:"V1" "in" "0" 1.0
  |> Netlist.resistor ~name:"R1" "in" "out" r
  |> Netlist.capacitor ~name:"C1" "out" "0" c

let test_determinant_numeric_cross_check () =
  let p = Linalg.Poly.of_coeffs in
  (* [[1, s], [s, 1]] -> det = 1 - s^2 *)
  let m = [| [| p [| 1.0 |]; p [| 0.0; 1.0 |] |]; [| p [| 0.0; 1.0 |]; p [| 1.0 |] |] |] in
  let d = Mna.Symbolic.determinant m in
  Alcotest.(check bool) "det = 1 - s^2" true
    (Linalg.Poly.equal d (p [| 1.0; 0.0; -1.0 |]))

let test_determinant_with_pivot () =
  let p = Linalg.Poly.of_coeffs in
  (* leading zero pivot forces a swap: [[0, 1], [1, 0]] -> det = -1 *)
  let m = [| [| Linalg.Poly.zero; p [| 1.0 |] |]; [| p [| 1.0 |]; Linalg.Poly.zero |] |] in
  Alcotest.(check bool) "det = -1" true
    (Linalg.Poly.equal (Mna.Symbolic.determinant m) (p [| -1.0 |]))

let test_determinant_singular () =
  let p = Linalg.Poly.of_coeffs in
  let row = [| p [| 1.0 |]; p [| 2.0 |] |] in
  let m = [| row; Array.copy row |] in
  Alcotest.(check bool) "det = 0" true
    (Linalg.Poly.is_zero (Mna.Symbolic.determinant m))

let test_rc_transfer () =
  let r = 1000.0 and c = 1e-6 in
  let h = Mna.Symbolic.transfer ~source:"V1" ~output:"out" (rc_lowpass ~r ~c ()) in
  (* H(s) = 1 / (1 + s R C) *)
  let expected =
    Linalg.Ratfunc.make Linalg.Poly.one (Linalg.Poly.of_coeffs [| 1.0; r *. c |])
  in
  Alcotest.(check bool) "H = 1/(1+sRC)" true (Linalg.Ratfunc.equal_at h expected)

let test_rc_pole () =
  let r = 1000.0 and c = 1e-6 in
  let poles = Mna.Symbolic.poles ~source:"V1" ~output:"out" (rc_lowpass ~r ~c ()) in
  Alcotest.(check int) "one pole" 1 (Array.length poles);
  Alcotest.(check (float 1.0)) "pole at -1/RC" (-1.0 /. (r *. c)) poles.(0).Complex.re

let test_symbolic_matches_numeric_sweep () =
  (* Sallen-Key style second-order section built from primitives; the
     symbolic transfer function must agree with the numeric AC solver on
     a wide grid. *)
  let n =
    Netlist.empty ~title:"twin-t-ish" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "a" 10_000.0
    |> Netlist.resistor ~name:"R2" "a" "out" 10_000.0
    |> Netlist.capacitor ~name:"C1" "a" "0" 10e-9
    |> Netlist.capacitor ~name:"C2" "out" "0" 4.7e-9
  in
  let h = Mna.Symbolic.transfer ~source:"V1" ~output:"out" n in
  let freqs = Util.Floatx.logspace 1.0 1e6 31 in
  let numeric = Mna.Ac.sweep ~source:"V1" ~output:"out" n ~freqs_hz:freqs in
  Array.iteri
    (fun i f ->
      let w = 2.0 *. Float.pi *. f in
      let sym = Linalg.Ratfunc.eval_jw h w in
      let err = Complex.norm (Complex.sub sym numeric.(i)) in
      if err > 1e-6 *. Float.max 1e-3 (Complex.norm numeric.(i)) then
        Alcotest.fail (Printf.sprintf "mismatch at %g Hz: err %g" f err))
    freqs

let test_opamp_symbolic () =
  (* inverting amplifier: H = -R2/R1 exactly, independent of s *)
  let n =
    Netlist.empty ~title:"inverting" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "minus" 1000.0
    |> Netlist.resistor ~name:"R2" "minus" "out" 3300.0
    |> Netlist.opamp ~name:"OP1" ~inp:"0" ~inn:"minus" ~out:"out"
  in
  let h = Mna.Symbolic.transfer ~source:"V1" ~output:"out" n in
  Alcotest.(check bool) "H = -3.3" true
    (Linalg.Ratfunc.equal_at h (Linalg.Ratfunc.const (-3.3)))

let suite =
  [
    Alcotest.test_case "poly determinant" `Quick test_determinant_numeric_cross_check;
    Alcotest.test_case "determinant pivot" `Quick test_determinant_with_pivot;
    Alcotest.test_case "determinant singular" `Quick test_determinant_singular;
    Alcotest.test_case "rc transfer" `Quick test_rc_transfer;
    Alcotest.test_case "rc pole" `Quick test_rc_pole;
    Alcotest.test_case "symbolic = numeric sweep" `Quick test_symbolic_matches_numeric_sweep;
    Alcotest.test_case "opamp symbolic" `Quick test_opamp_symbolic;
  ]
