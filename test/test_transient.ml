module Netlist = Circuit.Netlist
module T = Mna.Transient

let rc ~r ~c () =
  Netlist.empty ~title:"rc" ()
  |> Netlist.vsource ~name:"V1" "in" "0" 1.0
  |> Netlist.resistor ~name:"R1" "in" "out" r
  |> Netlist.capacitor ~name:"C1" "out" "0" c

let signal trace name = List.assoc name trace.T.signals

let test_waveforms () =
  Alcotest.(check (float 0.0)) "dc" 5.0 (T.value_at (T.Dc 5.0) 3.0);
  let step = T.Step { t0 = 1.0; v0 = 0.0; v1 = 2.0 } in
  Alcotest.(check (float 0.0)) "before" 0.0 (T.value_at step 0.5);
  Alcotest.(check (float 0.0)) "after" 2.0 (T.value_at step 1.5);
  let sine = T.Sine { amplitude = 2.0; freq_hz = 1.0; phase = 0.0 } in
  Alcotest.(check (float 1e-9)) "quarter period" 2.0 (T.value_at sine 0.25);
  let pwl = T.Pwl [ (0.0, 0.0); (1.0, 10.0); (2.0, 10.0) ] in
  Alcotest.(check (float 1e-9)) "interp" 5.0 (T.value_at pwl 0.5);
  Alcotest.(check (float 1e-9)) "hold" 10.0 (T.value_at pwl 5.0)

let test_rc_step_response () =
  (* a step between two samples is integrated as if it happened at the
     midpoint, so the reference is v(t) = 1 - exp(-(t - dt/2)/RC) *)
  let r = 1000.0 and c = 1e-6 in
  let tau = r *. c in
  let dt = tau /. 200.0 in
  let trace =
    T.simulate
      ~waveforms:[ ("V1", T.Step { t0 = 0.0; v0 = 0.0; v1 = 1.0 }) ]
      ~record:[ "out" ] ~t_stop:(5.0 *. tau) ~dt
      (rc ~r ~c ())
  in
  let out = signal trace "out" in
  Array.iteri
    (fun i t ->
      if i > 0 then begin
        let expected = 1.0 -. exp (-.(t -. (dt /. 2.0)) /. tau) in
        if Float.abs (out.(i) -. expected) > 2e-4 then
          Alcotest.fail
            (Printf.sprintf "t=%g: got %g, expected %g" t out.(i) expected)
      end)
    trace.T.times

let test_trapezoidal_second_order () =
  (* on a smooth (sine) input, halving dt cuts the error ~4x; the
     reference solution is a much finer run sampled at shared times *)
  let r = 1000.0 and c = 1e-6 in
  let f = 1.0 /. (2.0 *. Float.pi *. r *. c) in
  let t_stop = 2.0 /. f in
  let base_dt = 1.0 /. (f *. 64.0) in
  let run dt =
    signal
      (T.simulate
         ~waveforms:[ ("V1", T.Sine { amplitude = 1.0; freq_hz = f; phase = 0.0 }) ]
         ~record:[ "out" ] ~t_stop ~dt
         (rc ~r ~c ()))
      "out"
  in
  let ref_sol = run (base_dt /. 16.0) in
  let error dt stride =
    let sol = run dt in
    let err = ref 0.0 in
    Array.iteri
      (fun i v -> err := Float.max !err (Float.abs (v -. ref_sol.(i * stride))))
      sol;
    !err
  in
  let e1 = error base_dt 16 in
  let e2 = error (base_dt /. 2.0) 8 in
  Alcotest.(check bool)
    (Printf.sprintf "error ratio %g/%g ~ 4" e1 e2)
    true
    (e1 /. e2 > 3.0 && e1 /. e2 < 5.5)

let test_rl_current_rise () =
  (* series RL driven by a step: i(t) = (V/R)(1 - exp(-tR/L)), so
     v(out) across L decays exponentially *)
  let r = 100.0 and l = 10e-3 in
  let tau = l /. r in
  let n =
    Netlist.empty ~title:"rl" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "out" r
    |> Netlist.inductor ~name:"L1" "out" "0" l
  in
  let trace =
    T.simulate
      ~waveforms:[ ("V1", T.Step { t0 = 0.0; v0 = 0.0; v1 = 1.0 }) ]
      ~record:[ "out" ] ~t_stop:(5.0 *. tau) ~dt:(tau /. 200.0) n
  in
  let out = signal trace "out" in
  let i_mid = Array.length out / 2 in
  let t = trace.T.times.(i_mid) in
  Alcotest.(check (float 5e-3)) "inductor voltage decays" (exp (-.t /. tau)) out.(i_mid);
  Alcotest.(check bool) "settles to zero" true
    (Float.abs out.(Array.length out - 1) < 0.01)

let test_opamp_integrator_ramp () =
  (* ideal inverting integrator driven by DC: vout(t) = -t/(RC) *)
  let r = 10_000.0 and c = 100e-9 in
  let n =
    Netlist.empty ~title:"integrator" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "minus" r
    |> Netlist.capacitor ~name:"C1" "minus" "out" c
    |> Netlist.opamp ~name:"OP1" ~inp:"0" ~inn:"minus" ~out:"out"
  in
  let tau = r *. c in
  let trace =
    T.simulate
      ~waveforms:[ ("V1", T.Step { t0 = 0.0; v0 = 0.0; v1 = 1.0 }) ]
      ~record:[ "out" ] ~t_stop:tau ~dt:(tau /. 500.0) n
  in
  let out = signal trace "out" in
  let last = Array.length out - 1 in
  Alcotest.(check (float 5e-3)) "ramp reaches -1 at t = RC" (-1.0) out.(last)

let test_sine_steady_state_matches_ac () =
  (* drive the RC lowpass at its corner; after the transient dies the
     amplitude must match |H| = 1/sqrt 2 from the AC engine *)
  let r = 1000.0 and c = 1e-6 in
  let f = 1.0 /. (2.0 *. Float.pi *. r *. c) in
  let periods = 12.0 in
  let trace =
    T.simulate
      ~waveforms:[ ("V1", T.Sine { amplitude = 1.0; freq_hz = f; phase = 0.0 }) ]
      ~record:[ "out" ]
      ~t_stop:(periods /. f)
      ~dt:(1.0 /. (f *. 400.0))
      (rc ~r ~c ())
  in
  let out = signal trace "out" in
  (* peak over the last 2 periods *)
  let n = Array.length out in
  let tail_start = n - (n / 6) in
  let peak = ref 0.0 in
  for i = tail_start to n - 1 do
    peak := Float.max !peak (Float.abs out.(i))
  done;
  let expected =
    Complex.norm
      (Mna.Ac.transfer ~source:"V1" ~output:"out" (rc ~r ~c ())
         ~omega:(2.0 *. Float.pi *. f))
  in
  Alcotest.(check (float 5e-3)) "steady-state amplitude" expected !peak

let test_single_pole_opamp_follower_settles () =
  let n =
    Netlist.empty ~title:"follower" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.opamp
         ~model:(Circuit.Element.Single_pole { dc_gain = 1e5; pole_hz = 10.0 })
         ~name:"OP1" ~inp:"in" ~inn:"out" ~out:"out"
    |> Netlist.resistor ~name:"RL" "out" "0" 10_000.0
  in
  (* closed-loop bandwidth ~ GBW = 1 MHz -> settles within microseconds *)
  let trace =
    T.simulate
      ~waveforms:[ ("V1", T.Step { t0 = 0.0; v0 = 0.0; v1 = 1.0 }) ]
      ~record:[ "out" ] ~t_stop:20e-6 ~dt:20e-9 n
  in
  let out = signal trace "out" in
  Alcotest.(check (float 1e-3)) "follows step" 1.0 out.(Array.length out - 1);
  Alcotest.(check bool) "starts from rest" true (Float.abs out.(1) < 0.5)

let test_biquad_step_settles_to_dc_gain () =
  let b = Circuits.Tow_thomas.make () in
  let trace =
    T.simulate
      ~waveforms:[ ("Vin", T.Step { t0 = 0.0; v0 = 0.0; v1 = 1.0 }) ]
      ~record:[ "v2" ] ~t_stop:10e-3 ~dt:1e-6 b.Circuits.Benchmark.netlist
  in
  let out = signal trace "v2" in
  Alcotest.(check (float 1e-2)) "settles to dc gain" 1.0 out.(Array.length out - 1)

let test_invalid_args () =
  Alcotest.check_raises "bad dt"
    (Invalid_argument "Transient.simulate: dt and t_stop must be positive") (fun () ->
      ignore (T.simulate ~record:[] ~t_stop:1.0 ~dt:0.0 (rc ~r:1.0 ~c:1.0 ())))

let suite =
  [
    Alcotest.test_case "waveforms" `Quick test_waveforms;
    Alcotest.test_case "rc step response" `Quick test_rc_step_response;
    Alcotest.test_case "trapezoidal order" `Quick test_trapezoidal_second_order;
    Alcotest.test_case "rl current rise" `Quick test_rl_current_rise;
    Alcotest.test_case "integrator ramp" `Quick test_opamp_integrator_ramp;
    Alcotest.test_case "sine steady state = AC" `Quick test_sine_steady_state_matches_ac;
    Alcotest.test_case "single-pole follower" `Quick test_single_pole_opamp_follower_settles;
    Alcotest.test_case "biquad step" `Quick test_biquad_step_settles_to_dc_gain;
    Alcotest.test_case "invalid args" `Quick test_invalid_args;
  ]
