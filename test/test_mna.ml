module Netlist = Circuit.Netlist
module Element = Circuit.Element

let divider () =
  Netlist.empty ~title:"divider" ()
  |> Netlist.vsource ~name:"V1" "in" "0" 1.0
  |> Netlist.resistor ~name:"R1" "in" "out" 1000.0
  |> Netlist.resistor ~name:"R2" "out" "0" 3000.0

let rc_lowpass ~r ~c () =
  Netlist.empty ~title:"rc lowpass" ()
  |> Netlist.vsource ~name:"V1" "in" "0" 1.0
  |> Netlist.resistor ~name:"R1" "in" "out" r
  |> Netlist.capacitor ~name:"C1" "out" "0" c

let inverting_amp ~r1 ~r2 () =
  Netlist.empty ~title:"inverting amplifier" ()
  |> Netlist.vsource ~name:"V1" "in" "0" 1.0
  |> Netlist.resistor ~name:"R1" "in" "minus" r1
  |> Netlist.resistor ~name:"R2" "minus" "out" r2
  |> Netlist.opamp ~name:"OP1" ~inp:"0" ~inn:"minus" ~out:"out"

let test_divider_dc () =
  let sol = Mna.Dc.solve (divider ()) in
  Alcotest.(check (float 1e-9)) "vout" 0.75 (Mna.Dc.voltage sol "out");
  Alcotest.(check (float 1e-9)) "vin" 1.0 (Mna.Dc.voltage sol "in");
  (* branch current of V1: 1 V across 4 kOhm, flowing out of + *)
  Alcotest.(check (float 1e-12)) "i(V1)" (-0.00025) (Mna.Dc.current sol "V1")

let test_divider_ac () =
  (* frequency independent *)
  let h = Mna.Ac.transfer ~source:"V1" ~output:"out" (divider ()) ~omega:1234.0 in
  Alcotest.(check (float 1e-9)) "magnitude" 0.75 (Complex.norm h)

let test_rc_corner () =
  let r = 1000.0 and c = 1e-6 in
  let n = rc_lowpass ~r ~c () in
  let wc = 1.0 /. (r *. c) in
  let h = Mna.Ac.transfer ~source:"V1" ~output:"out" n ~omega:wc in
  Alcotest.(check (float 1e-9)) "corner magnitude" (1.0 /. sqrt 2.0) (Complex.norm h);
  Alcotest.(check (float 1e-9)) "corner phase" (-.Float.pi /. 4.0)
    (atan2 h.Complex.im h.Complex.re);
  let dc = Mna.Ac.transfer ~source:"V1" ~output:"out" n ~omega:0.0 in
  Alcotest.(check (float 1e-9)) "dc gain" 1.0 (Complex.norm dc);
  let high = Mna.Ac.transfer ~source:"V1" ~output:"out" n ~omega:(1000.0 *. wc) in
  Alcotest.(check (float 1e-4)) "-60dB at 1000 wc" 0.001 (Complex.norm high)

let test_inverting_amp () =
  let h =
    Mna.Ac.transfer ~source:"V1" ~output:"out" (inverting_amp ~r1:1000.0 ~r2:4700.0 ())
      ~omega:100.0
  in
  Alcotest.(check (float 1e-9)) "gain" 4.7 (Complex.norm h);
  Alcotest.(check (float 1e-9)) "inversion" (-4.7) h.Complex.re

let test_integrator () =
  (* ideal inverting integrator: H = -1/(s R C) *)
  let r = 10_000.0 and c = 100e-9 in
  let n =
    Netlist.empty ~title:"integrator" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "minus" r
    |> Netlist.capacitor ~name:"C1" "minus" "out" c
    |> Netlist.opamp ~name:"OP1" ~inp:"0" ~inn:"minus" ~out:"out"
  in
  let w = 2.0 *. Float.pi *. 1000.0 in
  let h = Mna.Ac.transfer ~source:"V1" ~output:"out" n ~omega:w in
  Alcotest.(check (float 1e-6)) "magnitude" (1.0 /. (w *. r *. c)) (Complex.norm h);
  (* -1/(s R C) at s = jw is purely imaginary positive: +j/(w R C) *)
  Alcotest.(check (float 1e-9)) "real part" 0.0 h.Complex.re;
  Alcotest.(check bool) "positive imaginary" true (h.Complex.im > 0.0)

let test_rl_divider () =
  (* series R then L to ground: |H| = wL / sqrt(R^2 + (wL)^2) *)
  let r = 50.0 and l = 1e-3 in
  let n =
    Netlist.empty ~title:"rl" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "out" r
    |> Netlist.inductor ~name:"L1" "out" "0" l
  in
  let w = r /. l in
  let h = Mna.Ac.transfer ~source:"V1" ~output:"out" n ~omega:w in
  Alcotest.(check (float 1e-9)) "corner" (1.0 /. sqrt 2.0) (Complex.norm h);
  let dc = Mna.Ac.transfer ~source:"V1" ~output:"out" n ~omega:0.0 in
  Alcotest.(check (float 1e-12)) "inductor shorts dc" 0.0 (Complex.norm dc)

let test_vcvs () =
  let n =
    Netlist.empty ~title:"vcvs" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "0" 1000.0
    |> Netlist.vcvs ~name:"E1" "out" "0" "in" "0" 2.5
    |> Netlist.resistor ~name:"RL" "out" "0" 500.0
  in
  let h = Mna.Ac.transfer ~source:"V1" ~output:"out" n ~omega:0.0 in
  Alcotest.(check (float 1e-9)) "gain" 2.5 h.Complex.re

let test_vccs () =
  (* gm into a load resistor: vout = -gm * vin * RL (current leaves npos) *)
  let n =
    Netlist.empty ~title:"vccs" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.vccs ~name:"G1" "out" "0" "in" "0" 0.002
    |> Netlist.resistor ~name:"RL" "out" "0" 1000.0
  in
  let h = Mna.Ac.transfer ~source:"V1" ~output:"out" n ~omega:0.0 in
  Alcotest.(check (float 1e-9)) "transimpedance" (-2.0) h.Complex.re

let test_current_sensing () =
  (* CCCS mirrors the current through V2 (a 0 V ammeter) into a load. *)
  let n =
    Netlist.empty ~title:"cccs" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "x" 1000.0
    |> Netlist.vsource ~name:"V2" "x" "0" 0.0
    |> Netlist.add
         (Element.Cccs { name = "F1"; npos = "out"; nneg = "0"; vsense = "V2"; gain = 2.0 })
    |> Netlist.resistor ~name:"RL" "out" "0" 1000.0
  in
  (* i(V2) = 1 V / 1 kOhm = 1 mA flowing + to -; F1 pushes 2 mA out of node out *)
  let sol = Mna.Ac.solve ~sources:(Mna.Assemble.Only "V1") n ~omega:0.0 in
  let iv2 = Mna.Ac.current sol "V2" in
  Alcotest.(check (float 1e-9)) "sensed current" 0.001 iv2.Complex.re;
  let vout = Mna.Ac.voltage sol "out" in
  Alcotest.(check (float 1e-9)) "mirrored" (-2.0) vout.Complex.re

let test_ccvs () =
  let n =
    Netlist.empty ~title:"ccvs" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "x" 1000.0
    |> Netlist.vsource ~name:"V2" "x" "0" 0.0
    |> Netlist.add
         (Element.Ccvs { name = "H1"; npos = "out"; nneg = "0"; vsense = "V2"; r = 5000.0 })
    |> Netlist.resistor ~name:"RL" "out" "0" 1000.0
  in
  let sol = Mna.Ac.solve ~sources:(Mna.Assemble.Only "V1") n ~omega:0.0 in
  let vout = Mna.Ac.voltage sol "out" in
  (* v(out) = r * i(V2) = 5000 * 1 mA = 5 V *)
  Alcotest.(check (float 1e-9)) "transresistance" 5.0 vout.Complex.re

let test_isource () =
  let n =
    Netlist.empty ~title:"isource" ()
    |> Netlist.isource ~name:"I1" "0" "out" 0.001
    |> Netlist.resistor ~name:"R1" "out" "0" 2000.0
  in
  let sol = Mna.Ac.solve n ~omega:0.0 in
  (* 1 mA into node out through 2 kOhm -> 2 V *)
  Alcotest.(check (float 1e-9)) "ohm's law" 2.0 (Mna.Ac.voltage sol "out").Complex.re

let test_singular_detection () =
  (* node with no DC path and no defined voltage: two capacitors in series
     at omega = 0 leave the middle node floating *)
  let n =
    Netlist.empty ~title:"floating" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.capacitor ~name:"C1" "in" "mid" 1e-6
    |> Netlist.capacitor ~name:"C2" "mid" "0" 1e-6
  in
  match Mna.Ac.transfer ~source:"V1" ~output:"mid" n ~omega:0.0 with
  | exception Mna.Ac.Singular_circuit _ -> ()
  | _ -> Alcotest.fail "expected Singular_circuit"

let test_superposition () =
  (* two sources drive a resistive summer; solution with both active equals
     the sum of single-source solutions *)
  let net v1 v2 =
    Netlist.empty ~title:"summer" ()
    |> Netlist.vsource ~name:"V1" "a" "0" v1
    |> Netlist.vsource ~name:"V2" "b" "0" v2
    |> Netlist.resistor ~name:"R1" "a" "out" 1000.0
    |> Netlist.resistor ~name:"R2" "b" "out" 2000.0
    |> Netlist.resistor ~name:"R3" "out" "0" 3000.0
  in
  let v_out sources netlist =
    (Mna.Ac.voltage (Mna.Ac.solve ~sources netlist ~omega:0.0) "out").Complex.re
  in
  let both = v_out Mna.Assemble.Nominal (net 2.0 3.0) in
  let only1 = v_out Mna.Assemble.Nominal (net 2.0 0.0) in
  let only2 = v_out Mna.Assemble.Nominal (net 0.0 3.0) in
  Alcotest.(check (float 1e-9)) "superposition" both (only1 +. only2)

let test_single_pole_opamp () =
  (* unity follower with a single-pole opamp: closed-loop pole near A0*wp *)
  let a0 = 1e5 and fp = 10.0 in
  let n =
    Netlist.empty ~title:"follower" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.opamp
         ~model:(Element.Single_pole { dc_gain = a0; pole_hz = fp })
         ~name:"OP1" ~inp:"in" ~inn:"out" ~out:"out"
    |> Netlist.resistor ~name:"RL" "out" "0" 10_000.0
  in
  let dc = Mna.Ac.transfer ~source:"V1" ~output:"out" n ~omega:0.0 in
  Alcotest.(check (float 1e-4)) "dc follower" 1.0 (Complex.norm dc);
  (* at the closed-loop bandwidth a0*fp the gain is ~ -3 dB *)
  let w_unity = 2.0 *. Float.pi *. (a0 *. fp) in
  let h = Mna.Ac.transfer ~source:"V1" ~output:"out" n ~omega:w_unity in
  Alcotest.(check (float 0.02)) "-3dB at GBW" (1.0 /. sqrt 2.0) (Complex.norm h)

let test_sweep_matches_pointwise () =
  let n = rc_lowpass ~r:1000.0 ~c:1e-6 () in
  let freqs = Util.Floatx.logspace 1.0 1e5 21 in
  let sweep = Mna.Ac.sweep ~source:"V1" ~output:"out" n ~freqs_hz:freqs in
  Array.iteri
    (fun i f ->
      let h = Mna.Ac.transfer ~source:"V1" ~output:"out" n ~omega:(2.0 *. Float.pi *. f) in
      Alcotest.(check (float 1e-12)) "sweep point" (Complex.norm h) (Complex.norm sweep.(i)))
    freqs

let qcheck_divider_ratio =
  QCheck.Test.make ~name:"two-resistor divider matches formula" ~count:100
    QCheck.(pair (float_range 1.0 1e6) (float_range 1.0 1e6))
    (fun (r1, r2) ->
      let n =
        Netlist.empty ()
        |> Netlist.vsource ~name:"V1" "in" "0" 1.0
        |> Netlist.resistor ~name:"R1" "in" "out" r1
        |> Netlist.resistor ~name:"R2" "out" "0" r2
      in
      let h = Mna.Ac.transfer ~source:"V1" ~output:"out" n ~omega:0.0 in
      Util.Floatx.approx_eq ~rel:1e-9 (Complex.norm h) (r2 /. (r1 +. r2)))

let qcheck_rc_magnitude =
  QCheck.Test.make ~name:"RC lowpass magnitude matches 1/sqrt(1+(w rc)^2)" ~count:100
    QCheck.(triple (float_range 10.0 1e5) (float_range 1e-9 1e-5) (float_range 1.0 1e6))
    (fun (r, c, f) ->
      let n = rc_lowpass ~r ~c () in
      let w = 2.0 *. Float.pi *. f in
      let h = Mna.Ac.transfer ~source:"V1" ~output:"out" n ~omega:w in
      let expected = 1.0 /. sqrt (1.0 +. ((w *. r *. c) ** 2.0)) in
      Util.Floatx.approx_eq ~rel:1e-7 (Complex.norm h) expected)

let suite =
  [
    Alcotest.test_case "divider dc" `Quick test_divider_dc;
    Alcotest.test_case "divider ac" `Quick test_divider_ac;
    Alcotest.test_case "rc corner" `Quick test_rc_corner;
    Alcotest.test_case "inverting amp" `Quick test_inverting_amp;
    Alcotest.test_case "integrator" `Quick test_integrator;
    Alcotest.test_case "rl divider" `Quick test_rl_divider;
    Alcotest.test_case "vcvs" `Quick test_vcvs;
    Alcotest.test_case "vccs" `Quick test_vccs;
    Alcotest.test_case "cccs sensing" `Quick test_current_sensing;
    Alcotest.test_case "ccvs" `Quick test_ccvs;
    Alcotest.test_case "isource" `Quick test_isource;
    Alcotest.test_case "singular detection" `Quick test_singular_detection;
    Alcotest.test_case "superposition" `Quick test_superposition;
    Alcotest.test_case "single-pole opamp" `Quick test_single_pole_opamp;
    Alcotest.test_case "sweep = pointwise" `Quick test_sweep_matches_pointwise;
    QCheck_alcotest.to_alcotest qcheck_divider_ratio;
    QCheck_alcotest.to_alcotest qcheck_rc_magnitude;
  ]
