module Netlist = Circuit.Netlist
module Grid = Testability.Grid
module Detect = Testability.Detect
module Matrix = Testability.Matrix

let rc ~r ~c () =
  Netlist.empty ~title:"rc" ()
  |> Netlist.vsource ~name:"V1" "in" "0" 1.0
  |> Netlist.resistor ~name:"R1" "in" "out" r
  |> Netlist.capacitor ~name:"C1" "out" "0" c

let probe = { Detect.source = "V1"; output = "out" }

(* --- grids --- *)

let test_grid_bounds () =
  let g = Grid.make ~points_per_decade:10 ~f_lo:10.0 ~f_hi:1000.0 () in
  Alcotest.(check (float 1e-9)) "f_lo" 10.0 (Grid.f_lo g);
  Alcotest.(check (float 1e-6)) "f_hi" 1000.0 (Grid.f_hi g);
  Alcotest.(check (float 1e-9)) "decades" 2.0 (Grid.log_measure g);
  Alcotest.(check int) "points" 21 (Grid.n_points g)

let test_grid_around () =
  let g = Grid.around ~center_hz:1000.0 () in
  Alcotest.(check (float 1e-6)) "lo" 10.0 (Grid.f_lo g);
  Alcotest.(check (float 0.01)) "hi" 100_000.0 (Grid.f_hi g)

let test_grid_invalid () =
  Alcotest.check_raises "inverted" (Invalid_argument "Grid.make: f_lo >= f_hi") (fun () ->
      ignore (Grid.make ~f_lo:10.0 ~f_hi:1.0 ()))

let test_point_intervals_tile () =
  let g = Grid.make ~points_per_decade:7 ~f_lo:1.0 ~f_hi:100.0 () in
  let total =
    Util.Floatx.fold_range (Grid.n_points g) ~init:0.0 ~f:(fun acc i ->
        acc +. Util.Interval.length (Grid.point_interval g i))
  in
  Alcotest.(check (float 1e-9)) "tiles exactly" (Grid.log_measure g) total

(* --- deviation and detection --- *)

let test_response_deviation () =
  let c x = Complex.{ re = x; im = 0.0 } in
  let dev =
    Detect.response_deviation ~nominal:[| c 1.0; c 2.0; c 0.0 |]
      ~faulty:[| c 1.1; c 1.0; c 0.0 |]
  in
  Alcotest.(check (float 1e-9)) "10%" 0.1 dev.(0);
  Alcotest.(check (float 1e-9)) "50%" 0.5 dev.(1);
  Alcotest.(check (float 1e-9)) "0/0" 0.0 dev.(2)

let test_detect_rc_shift () =
  (* +20% on R shifts the corner down; with eps = 10% the fault is
     detectable around and above the corner, not at DC *)
  let n = rc ~r:1000.0 ~c:1e-6 () in
  let grid = Grid.around ~points_per_decade:20 ~center_hz:159.0 () in
  let fault = Fault.deviation ~element:"R1" 1.2 in
  let r =
    Detect.analyze_fault ~criterion:(Detect.Fixed_tolerance 0.10) probe grid n fault
  in
  Alcotest.(check bool) "detectable" true r.Detect.detectable;
  Alcotest.(check bool) "partially" true (r.Detect.omega_det > 0.0 && r.Detect.omega_det < 1.0);
  (* DC is not in the detectability region: deviation vanishes there *)
  Alcotest.(check bool) "dc clean" false
    (Util.Interval.Set.contains r.Detect.regions (log10 (Grid.f_lo grid)))

let test_undetectable_small_deviation () =
  let n = rc ~r:1000.0 ~c:1e-6 () in
  let grid = Grid.around ~points_per_decade:10 ~center_hz:159.0 () in
  let fault = Fault.deviation ~element:"R1" 1.01 in
  let r =
    Detect.analyze_fault ~criterion:(Detect.Fixed_tolerance 0.10) probe grid n fault
  in
  Alcotest.(check bool) "1% drift invisible at eps=10%" false r.Detect.detectable;
  Alcotest.(check (float 0.0)) "omega zero" 0.0 r.Detect.omega_det

let test_omega_det_bounds () =
  let n = rc ~r:1000.0 ~c:1e-6 () in
  let grid = Grid.around ~points_per_decade:10 ~center_hz:159.0 () in
  List.iter
    (fun r ->
      Alcotest.(check bool) "omega in [0,1]" true
        (r.Detect.omega_det >= 0.0 && r.Detect.omega_det <= 1.0);
      Alcotest.(check bool) "detectable iff omega > 0" true
        (r.Detect.detectable = (r.Detect.omega_det > 0.0)))
    (Detect.analyze probe grid n (Fault.both_deviations n @ Fault.catastrophic_faults n))

let test_catastrophic_strongly_detectable () =
  let n = rc ~r:1000.0 ~c:1e-6 () in
  let grid = Grid.around ~points_per_decade:10 ~center_hz:159.0 () in
  let results = Detect.analyze probe grid n (Fault.catastrophic_faults n) in
  List.iter
    (fun r ->
      Alcotest.(check bool) (r.Detect.fault.Fault.id ^ " detected") true r.Detect.detectable)
    results

let test_envelope_masks_small_faults () =
  (* under the process-envelope criterion, a fault the size of the
     process tolerance itself must be invisible *)
  let n = rc ~r:1000.0 ~c:1e-6 () in
  let grid = Grid.around ~points_per_decade:10 ~center_hz:159.0 () in
  let criterion = Detect.Process_envelope { component_tol = 0.05; floor = 0.01 } in
  let fault = Fault.deviation ~element:"R1" 1.05 in
  let r = Detect.analyze_fault ~criterion probe grid n fault in
  Alcotest.(check bool) "masked" false r.Detect.detectable

let test_envelope_vs_fixed_ordering () =
  (* the envelope threshold is at least the floor everywhere, so any
     fault detectable under it is also detectable at eps = floor *)
  let n = rc ~r:1000.0 ~c:1e-6 () in
  let grid = Grid.around ~points_per_decade:10 ~center_hz:159.0 () in
  let faults = Fault.deviation_faults n in
  let envelope =
    Detect.analyze
      ~criterion:(Detect.Process_envelope { component_tol = 0.04; floor = 0.02 })
      probe grid n faults
  in
  let fixed = Detect.analyze ~criterion:(Detect.Fixed_tolerance 0.02) probe grid n faults in
  List.iter2
    (fun (e : Detect.result) (f : Detect.result) ->
      if e.Detect.detectable then
        Alcotest.(check bool) "envelope implies fixed-at-floor" true f.Detect.detectable)
    envelope fixed

let test_coverage_stats () =
  let mk detectable omega_det =
    {
      Detect.fault = Fault.deviation ~element:"R1" 1.2;
      detectable;
      omega_det;
      regions = Util.Interval.Set.empty;
    }
  in
  Alcotest.(check (float 1e-9)) "coverage" 0.5
    (Detect.fault_coverage [ mk true 0.4; mk false 0.0 ]);
  Alcotest.(check (float 1e-9)) "avg omega" 0.2
    (Detect.average_omega_det [ mk true 0.4; mk false 0.0 ]);
  Alcotest.(check (float 0.0)) "empty coverage" 0.0 (Detect.fault_coverage []);
  Alcotest.(check (float 0.0)) "empty avg" 0.0 (Detect.average_omega_det [])

(* --- matrix --- *)

let test_matrix_build () =
  (* two views of the same RC with different probe outputs *)
  let n = rc ~r:1000.0 ~c:1e-6 () in
  let grid = Grid.around ~points_per_decade:10 ~center_hz:159.0 () in
  let views =
    [
      { Matrix.label = "out"; netlist = n; probe };
      { Matrix.label = "in"; netlist = n; probe = { probe with Detect.output = "in" } };
    ]
  in
  let faults = Fault.deviation_faults n in
  let m = Matrix.build ~criterion:(Detect.Fixed_tolerance 0.10) grid views faults in
  Alcotest.(check int) "views" 2 (Matrix.n_views m);
  Alcotest.(check int) "faults" 2 (Matrix.n_faults m);
  (* the "in" view observes the source directly: no fault detectable *)
  Alcotest.(check (float 0.0)) "blind view" 0.0 (Matrix.coverage_of_view m 1);
  Alcotest.(check (float 0.0)) "good view" 1.0 (Matrix.coverage_of_view m 0);
  Alcotest.(check (float 0.0)) "max coverage" 1.0 (Matrix.max_fault_coverage m);
  Alcotest.(check bool) "anywhere" true (Matrix.detectable_anywhere m 0)

let test_matrix_best_omega () =
  let n = rc ~r:1000.0 ~c:1e-6 () in
  let grid = Grid.around ~points_per_decade:10 ~center_hz:159.0 () in
  let views =
    [
      { Matrix.label = "out"; netlist = n; probe };
      { Matrix.label = "in"; netlist = n; probe = { probe with Detect.output = "in" } };
    ]
  in
  let m = Matrix.build ~criterion:(Detect.Fixed_tolerance 0.10) grid views (Fault.deviation_faults n) in
  Alcotest.(check (float 1e-9)) "best over both = view 0" (m.Matrix.omega.(0).(0))
    (Matrix.best_omega_det m 0);
  Alcotest.(check (float 1e-9)) "restricted to blind view" 0.0
    (Matrix.best_omega_det_over m [ 1 ] 0);
  Alcotest.(check (float 1e-9)) "average over blind view" 0.0
    (Matrix.average_best_omega_det ~views:[ 1 ] m)

let suite =
  [
    Alcotest.test_case "grid bounds" `Quick test_grid_bounds;
    Alcotest.test_case "grid around" `Quick test_grid_around;
    Alcotest.test_case "grid invalid" `Quick test_grid_invalid;
    Alcotest.test_case "point intervals tile" `Quick test_point_intervals_tile;
    Alcotest.test_case "response deviation" `Quick test_response_deviation;
    Alcotest.test_case "rc shift detection" `Quick test_detect_rc_shift;
    Alcotest.test_case "small deviation invisible" `Quick test_undetectable_small_deviation;
    Alcotest.test_case "omega bounds" `Quick test_omega_det_bounds;
    Alcotest.test_case "catastrophic detected" `Quick test_catastrophic_strongly_detectable;
    Alcotest.test_case "envelope masks tolerance-sized faults" `Quick test_envelope_masks_small_faults;
    Alcotest.test_case "envelope implies fixed-at-floor" `Quick test_envelope_vs_fixed_ordering;
    Alcotest.test_case "coverage stats" `Quick test_coverage_stats;
    Alcotest.test_case "matrix build" `Quick test_matrix_build;
    Alcotest.test_case "matrix best omega" `Quick test_matrix_best_omega;
  ]

let test_parallel_build_matches_sequential () =
  let b = Circuits.Tow_thomas.make () in
  let dft = Multiconfig.Transform.make ~source:"Vin" ~output:"v2" b.Circuits.Benchmark.netlist in
  let g = Grid.around ~points_per_decade:6 ~center_hz:1000.0 () in
  let faults = Fault.deviation_faults b.Circuits.Benchmark.netlist in
  let views =
    List.map
      (fun config ->
        { Matrix.label = Multiconfig.Configuration.label config;
          netlist = Multiconfig.Transform.emulate dft config;
          probe = { Detect.source = "Vin"; output = "v2" } })
      (Multiconfig.Transform.test_configurations dft)
  in
  let seq = Matrix.build ~criterion:(Detect.Fixed_tolerance 0.1) g views faults in
  let par = Matrix.build ~criterion:(Detect.Fixed_tolerance 0.1) ~jobs:4 g views faults in
  Alcotest.(check bool) "same detect" true (seq.Matrix.detect = par.Matrix.detect);
  Alcotest.(check bool) "same omega" true (seq.Matrix.omega = par.Matrix.omega)

let suite =
  suite @ [ Alcotest.test_case "parallel = sequential" `Quick test_parallel_build_matches_sequential ]

let test_grid_rejects_nonpositive_density () =
  Alcotest.check_raises "ppd 0"
    (Invalid_argument "Grid.make: points_per_decade must be positive") (fun () ->
      ignore (Grid.make ~points_per_decade:0 ~f_lo:1.0 ~f_hi:10.0 ()))

let suite =
  suite
  @ [ Alcotest.test_case "grid density guard" `Quick test_grid_rejects_nonpositive_density ]
