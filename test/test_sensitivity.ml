module Netlist = Circuit.Netlist

let divider ~r1 ~r2 () =
  Netlist.empty ~title:"divider" ()
  |> Netlist.vsource ~name:"V1" "in" "0" 1.0
  |> Netlist.resistor ~name:"R1" "in" "out" r1
  |> Netlist.resistor ~name:"R2" "out" "0" r2

let find name results =
  List.find (fun (s : Mna.Sensitivity.t) -> s.Mna.Sensitivity.element = name) results

let test_divider_analytic () =
  (* T = R2/(R1+R2): S_R2 = R1/(R1+R2), S_R1 = -R1/(R1+R2) *)
  let r1 = 1000.0 and r2 = 3000.0 in
  let results =
    Mna.Sensitivity.at_omega ~source:"V1" ~output:"out" (divider ~r1 ~r2 ()) ~omega:0.0
  in
  let expected = r1 /. (r1 +. r2) in
  let s2 = find "R2" results in
  Alcotest.(check (float 1e-9)) "S_R2" expected s2.Mna.Sensitivity.normalized.Complex.re;
  let s1 = find "R1" results in
  Alcotest.(check (float 1e-9)) "S_R1" (-.expected) s1.Mna.Sensitivity.normalized.Complex.re

let test_rc_capacitor_sensitivity () =
  (* T = 1/(1+sRC): S_C = -sRC/(1+sRC); at w = 1/RC, S_C = -j/(1+j),
     |S_C| = 1/sqrt(2) *)
  let r = 1000.0 and c = 1e-6 in
  let n =
    Netlist.empty ~title:"rc" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "out" r
    |> Netlist.capacitor ~name:"C1" "out" "0" c
  in
  let results =
    Mna.Sensitivity.at_omega ~source:"V1" ~output:"out" n ~omega:(1.0 /. (r *. c))
  in
  let sc = find "C1" results in
  Alcotest.(check (float 1e-9)) "|S_C| at corner" (1.0 /. sqrt 2.0)
    (Complex.norm sc.Mna.Sensitivity.normalized);
  (* R and C are interchangeable in sRC: identical sensitivities *)
  let sr = find "R1" results in
  Alcotest.(check (float 1e-12)) "S_R = S_C (re)"
    sc.Mna.Sensitivity.normalized.Complex.re sr.Mna.Sensitivity.normalized.Complex.re;
  Alcotest.(check (float 1e-12)) "S_R = S_C (im)"
    sc.Mna.Sensitivity.normalized.Complex.im sr.Mna.Sensitivity.normalized.Complex.im

let test_inductor_sensitivity () =
  (* RL divider to ground: T = sL/(R+sL); S_L = R/(R+sL) *)
  let r = 50.0 and l = 1e-3 in
  let n =
    Netlist.empty ~title:"rl" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "out" r
    |> Netlist.inductor ~name:"L1" "out" "0" l
  in
  let w = r /. l in
  let results = Mna.Sensitivity.at_omega ~source:"V1" ~output:"out" n ~omega:w in
  let sl = find "L1" results in
  (* S_L = R/(R+jwL) = 1/(1+j) at w = R/L *)
  Alcotest.(check (float 1e-9)) "re" 0.5 sl.Mna.Sensitivity.normalized.Complex.re;
  Alcotest.(check (float 1e-9)) "im" (-0.5) sl.Mna.Sensitivity.normalized.Complex.im

(* The decisive check: adjoint sensitivities against central finite
   differences on every passive of every benchmark circuit, at several
   frequencies, through opamps, feedback loops and all. *)
let test_adjoint_matches_finite_difference () =
  List.iter
    (fun (b : Circuits.Benchmark.t) ->
      let netlist = b.Circuits.Benchmark.netlist in
      let source = b.Circuits.Benchmark.source and output = b.Circuits.Benchmark.output in
      List.iter
        (fun f_rel ->
          let omega = 2.0 *. Float.pi *. b.Circuits.Benchmark.center_hz *. f_rel in
          let adjoint = Mna.Sensitivity.at_omega ~source ~output netlist ~omega in
          List.iter
            (fun (s : Mna.Sensitivity.t) ->
              let name = s.Mna.Sensitivity.element in
              let h = 1e-6 in
              let perturbed factor =
                Mna.Ac.transfer ~source ~output
                  (Netlist.map_value ~name ~f:(fun v -> v *. factor) netlist)
                  ~omega
              in
              let tp = perturbed (1.0 +. h) and tm = perturbed (1.0 -. h) in
              let base_value =
                match Circuit.Element.value (Netlist.find_exn netlist name) with
                | Some v -> v
                | None -> Alcotest.fail "passive without value"
              in
              let fd =
                Complex.div (Complex.sub tp tm)
                  { Complex.re = 2.0 *. h *. base_value; im = 0.0 }
              in
              let err = Complex.norm (Complex.sub fd s.Mna.Sensitivity.d_transfer) in
              let scale = Float.max 1e-9 (Complex.norm fd) in
              if err > 1e-3 *. scale && err > 1e-12 then
                Alcotest.fail
                  (Printf.sprintf "%s/%s at %.0fx f0: adjoint %g, fd %g"
                     b.Circuits.Benchmark.name name f_rel
                     (Complex.norm s.Mna.Sensitivity.d_transfer)
                     (Complex.norm fd)))
            adjoint)
        [ 0.1; 1.0; 10.0 ])
    [
      Circuits.Tow_thomas.make ();
      Circuits.Sallen_key.lowpass ();
      Circuits.Khn.make ();
      Circuits.Notch.make ();
    ]

let test_magnitude_sweep_shape () =
  let b = Circuits.Tow_thomas.make () in
  let freqs = Util.Floatx.logspace 10.0 1e5 11 in
  let sweep =
    Mna.Sensitivity.magnitude_sweep ~source:"Vin" ~output:"v2"
      b.Circuits.Benchmark.netlist ~freqs_hz:freqs
  in
  Alcotest.(check int) "one series per passive" 8 (List.length sweep);
  List.iter
    (fun (_, values) ->
      Alcotest.(check int) "one value per freq" 11 (Array.length values);
      Array.iter
        (fun v -> Alcotest.(check bool) "finite" true (Float.is_finite v))
        values)
    sweep

let suite =
  [
    Alcotest.test_case "divider analytic" `Quick test_divider_analytic;
    Alcotest.test_case "rc capacitor" `Quick test_rc_capacitor_sensitivity;
    Alcotest.test_case "inductor" `Quick test_inductor_sensitivity;
    Alcotest.test_case "adjoint = finite difference" `Quick test_adjoint_matches_finite_difference;
    Alcotest.test_case "magnitude sweep" `Quick test_magnitude_sweep_shape;
  ]
