(* The conformance subsystem itself:
   - seeded generation is deterministic and family-diverse;
   - a healthy engine passes every oracle over a mixed campaign;
   - a re-injected Sherman-Morrison denominator-guard bug is caught by
     the rank1-updates oracle and shrinks to a tiny repro (the ISSUE's
     headline acceptance);
   - repro fixtures round-trip through save/load/replay, and the
     checked-in ones replay green on the healthy engine and red under
     the injected bug;
   - golden snapshots match byte-for-byte and drift is detected;
   - Solver.brute_force agrees with Solver.exact on random covers. *)

module Gen = Conformance.Gen
module Oracle = Conformance.Oracle
module Shrink = Conformance.Shrink
module Fuzz = Conformance.Fuzz
module Netlist = Circuit.Netlist

let oracle name =
  match Oracle.find name with
  | Some o -> o
  | None -> Alcotest.failf "oracle %S not registered" name

let netlist_text s = Spice.Writer.to_string s.Gen.netlist

let with_chaos k f =
  Testability.Fastsim.set_chaos (`Smw_denominator k);
  Fun.protect f ~finally:(fun () -> Testability.Fastsim.set_chaos `None)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

(* ---- generation ---- *)

let test_gen_deterministic () =
  List.iter
    (fun family ->
      List.iter
        (fun seed ->
          let a = Gen.generate family ~seed and b = Gen.generate family ~seed in
          Alcotest.(check string)
            (Printf.sprintf "%s seed %d netlist" (Gen.family_name family) seed)
            (netlist_text a) (netlist_text b);
          Alcotest.(check string) "label" a.Gen.label b.Gen.label;
          Alcotest.(check string) "source" a.Gen.source b.Gen.source;
          Alcotest.(check string) "output" a.Gen.output b.Gen.output)
        [ 0; 1; 17; 423 ])
    Gen.families

let test_gen_seed_sensitivity () =
  (* different seeds must explore different circuits (not a constant
     generator): at least 8 distinct netlists in 10 ladder seeds *)
  let texts =
    List.init 10 (fun seed -> netlist_text (Gen.generate Gen.Ladder ~seed))
  in
  let distinct = List.sort_uniq compare texts in
  Alcotest.(check bool) "ladder seeds diversify" true (List.length distinct >= 8)

let test_gen_subjects_wellformed () =
  List.iter
    (fun family ->
      List.iter
        (fun seed ->
          let s = Gen.generate family ~seed in
          Alcotest.(check bool)
            (s.Gen.label ^ " source present")
            true
            (Netlist.mem s.Gen.netlist s.Gen.source);
          Alcotest.(check bool)
            (s.Gen.label ^ " output node present")
            true
            (List.mem s.Gen.output (Netlist.nodes s.Gen.netlist)))
        [ 0; 5; 11 ])
    Gen.families

(* ---- healthy engines pass the oracles ---- *)

let test_fuzz_healthy_run () =
  let outcome =
    Fuzz.run { Fuzz.default with Fuzz.seed = 1; max_cases = Some 16 }
  in
  Alcotest.(check int) "cases" 16 outcome.Fuzz.cases;
  Alcotest.(check int) "failures" 0 (List.length outcome.Fuzz.failures);
  Alcotest.(check bool) "mostly passes" true
    (outcome.Fuzz.passes > outcome.Fuzz.skips)

let test_fuzz_deterministic () =
  let config = { Fuzz.default with Fuzz.seed = 5; max_cases = Some 10 } in
  let a = Fuzz.run config and b = Fuzz.run config in
  Alcotest.(check string) "identical summaries" (Fuzz.summary a) (Fuzz.summary b)

(* the CLI wrapper must be deterministic across --jobs too (ISSUE
   acceptance); drive the real binary and compare bytes *)
let mcdft_exe = "../bin/mcdft.exe"

let run_capture cmd =
  let out = Filename.temp_file "mcdft_fuzz" ".out" in
  let code = Sys.command (Printf.sprintf "%s > %s 2>/dev/null" cmd out) in
  let ic = open_in_bin out in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove out;
  (code, s)

let test_cli_fuzz_jobs_invariant () =
  let run jobs =
    run_capture
      (Printf.sprintf "%s fuzz --seed 42 --cases 8 --jobs %d --shrink-dir tmp_cli_repros"
         mcdft_exe jobs)
  in
  let c1, out1 = run 1 and c4, out4 = run 4 in
  rm_rf "tmp_cli_repros";
  Alcotest.(check int) "jobs:1 exit" 0 c1;
  Alcotest.(check int) "jobs:4 exit" 0 c4;
  Alcotest.(check string) "byte-identical reports" out1 out4

(* ---- the injected bug is caught and shrunk ---- *)

let find_failing ~oracle family =
  let rec hunt seed =
    if seed > 50 then
      Alcotest.failf "chaos bug never caught on %s seeds 0..50"
        (Gen.family_name family)
    else
      let subject = Gen.generate family ~seed in
      match Oracle.run oracle subject with
      | Oracle.Fail message -> (subject, message)
      | _ -> hunt (seed + 1)
  in
  hunt 0

let test_chaos_bug_caught_and_shrunk () =
  let oracle = oracle "rank1-updates" in
  with_chaos 1.25 (fun () ->
      let subject, _message = find_failing ~oracle Gen.Ladder in
      let shrunk = Shrink.minimize ~oracle subject in
      Alcotest.(check bool)
        (Printf.sprintf "shrunk to <= 8 elements (got %d)"
           (Netlist.size shrunk.Gen.netlist))
        true
        (Netlist.size shrunk.Gen.netlist <= 8);
      Alcotest.(check bool) "shrink never grows" true
        (Netlist.size shrunk.Gen.netlist <= Netlist.size subject.Gen.netlist);
      match Oracle.run oracle shrunk with
      | Oracle.Fail _ -> ()
      | v ->
          Alcotest.failf "shrunk subject no longer fails: %s"
            (Oracle.verdict_to_string v));
  (* chaos off again: the same oracle must be green on the same seeds *)
  let subject = Gen.generate Gen.Ladder ~seed:0 in
  match Oracle.run (Option.get (Oracle.find "rank1-updates")) subject with
  | Oracle.Pass -> ()
  | v -> Alcotest.failf "healthy engine flagged: %s" (Oracle.verdict_to_string v)

let test_repro_roundtrip () =
  let oracle = oracle "rank1-updates" in
  with_chaos 1.25 (fun () ->
      let subject, message = find_failing ~oracle Gen.Ladder in
      let shrunk = Shrink.minimize ~oracle subject in
      rm_rf "tmp_repros";
      let _cir, json = Shrink.save ~dir:"tmp_repros" ~oracle ~message shrunk in
      match Shrink.load ~expected:json with
      | Error e -> Alcotest.fail e
      | Ok repro ->
          Alcotest.(check string) "oracle name" "rank1-updates"
            repro.Shrink.oracle;
          Alcotest.(check string) "label" shrunk.Gen.label repro.Shrink.label;
          (* value formatting keeps ~6 significant digits, far inside
             the bug's signature: the failure must survive the disk
             round-trip *)
          (match Shrink.replay repro with
          | Ok (Oracle.Fail _) -> ()
          | Ok v ->
              Alcotest.failf "replay under chaos: %s"
                (Oracle.verdict_to_string v)
          | Error e -> Alcotest.fail e));
  rm_rf "tmp_repros"

(* ---- the checked-in shrunk fixtures ---- *)

let shrunk_fixtures =
  [
    "fixtures/shrunk/ladder-0--rank1-updates.expected.json";
    "fixtures/shrunk/active-0--rank1-updates.expected.json";
    "fixtures/shrunk/near-singular-0--rank1-updates.expected.json";
  ]

let test_shrunk_fixtures_regress () =
  List.iter
    (fun expected ->
      match Shrink.load ~expected with
      | Error e -> Alcotest.fail e
      | Ok repro ->
          Alcotest.(check bool)
            (expected ^ " stays a small repro")
            true
            (Netlist.size repro.Shrink.netlist <= 8);
          (* healthy engine: the recorded bug must stay fixed *)
          (match Shrink.replay repro with
          | Ok Oracle.Pass -> ()
          | Ok v ->
              Alcotest.failf "%s on healthy engine: %s" expected
                (Oracle.verdict_to_string v)
          | Error e -> Alcotest.fail e);
          (* and the fixture must still exercise the guarded path: the
             re-injected bug turns it red again *)
          with_chaos 1.25 (fun () ->
              match Shrink.replay repro with
              | Ok (Oracle.Fail _) -> ()
              | Ok v ->
                  Alcotest.failf "%s no longer exercises the bug: %s" expected
                    (Oracle.verdict_to_string v)
              | Error e -> Alcotest.fail e))
    shrunk_fixtures

(* ---- golden snapshots ---- *)

let test_snapshots_match () =
  match Conformance.Snapshot.check ~dir:"fixtures/snapshots" with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let test_snapshot_drift_detected () =
  rm_rf "tmp_snapshots";
  let paths = Conformance.Snapshot.update ~dir:"tmp_snapshots" in
  (match Conformance.Snapshot.check ~dir:"tmp_snapshots" with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("freshly written snapshots drift: " ^ msg));
  (* flip one byte: the comparison must notice *)
  let victim = List.hd paths in
  let ic = open_in_bin victim in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin victim in
  output_string oc body;
  output_string oc " ";
  close_out oc;
  (match Conformance.Snapshot.check ~dir:"tmp_snapshots" with
  | Ok () -> Alcotest.fail "byte-level drift not detected"
  | Error _ -> ());
  rm_rf "tmp_snapshots"

(* ---- brute-force vs exact covers ---- *)

let qcheck_brute_matches_exact =
  QCheck.Test.make ~name:"Solver.exact cost = Solver.brute_force cost" ~count:200
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let rows = 2 + Random.State.int rng 5
      and cols = 1 + Random.State.int rng 8 in
      let m =
        Array.init rows (fun _ ->
            Array.init cols (fun _ -> Random.State.bool rng))
      in
      let clause = Cover.Clause.of_matrix m in
      let weighted = Random.State.bool rng in
      let cost = if weighted then Some (fun i -> 1.0 +. (0.3 *. float_of_int i)) else None in
      let exact = Cover.Solver.(cover_exn (exact ?cost clause)) in
      let brute = Cover.Solver.(cover_exn (brute_force ?cost clause)) in
      let greedy = Cover.Solver.(cover_exn (greedy ?cost clause)) in
      (* the two searches may return *different* minimal covers whose
         float costs differ in the last ulp (the 0.3·i weights are
         inexact and the summation orders differ), so the optimality
         checks compare with an ulp-level slack rather than [=] *)
      let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.abs b) in
      let c_exact = Cover.Solver.cost_of ?cost exact in
      Cover.Clause.is_cover clause exact
      && Cover.Clause.is_cover clause brute
      && Cover.Clause.is_cover clause greedy
      && close (Cover.Solver.cost_of ?cost brute) c_exact
      && Cover.Solver.cost_of ?cost greedy >= c_exact -. (1e-9 *. Float.max 1.0 c_exact))

let test_brute_force_candidate_limit () =
  let clauses =
    Cover.Clause.of_sets ~n_candidates:24
      [ Cover.Clause.IntSet.of_list (List.init 24 Fun.id) ]
  in
  match Cover.Solver.brute_force clauses with
  | _ -> Alcotest.fail "expected Invalid_argument beyond 20 candidates"
  | exception Invalid_argument _ -> ()

(* ---- oracle registry hygiene ---- *)

let test_oracle_registry () =
  let names = List.map (fun o -> o.Oracle.name) Oracle.all in
  Alcotest.(check int) "eleven oracles" 11 (List.length names);
  Alcotest.(check bool) "names unique" true
    (List.length (List.sort_uniq compare names) = List.length names);
  List.iter
    (fun n ->
      match Oracle.find n with
      | Some o -> Alcotest.(check string) "find is by name" n o.Oracle.name
      | None -> Alcotest.failf "find %S" n)
    names;
  Alcotest.(check bool) "unknown name" true (Oracle.find "nope" = None)

let test_oracle_guard_rails () =
  (* a subject whose output node vanished must be skipped, not crash —
     the shrinker relies on this to reject destructive removals *)
  let s = Gen.generate Gen.Ladder ~seed:3 in
  let broken = { s with Gen.output = "no_such_node" } in
  List.iter
    (fun o ->
      match Oracle.run o broken with
      | Oracle.Skip _ -> ()
      | v ->
          Alcotest.failf "%s on broken subject: %s" o.Oracle.name
            (Oracle.verdict_to_string v))
    Oracle.all

let suite =
  [
    Alcotest.test_case "generation is seed-deterministic" `Quick
      test_gen_deterministic;
    Alcotest.test_case "generation diversifies across seeds" `Quick
      test_gen_seed_sensitivity;
    Alcotest.test_case "subjects are well-formed" `Quick
      test_gen_subjects_wellformed;
    Alcotest.test_case "healthy engines pass a mixed campaign" `Slow
      test_fuzz_healthy_run;
    Alcotest.test_case "campaigns are run-to-run deterministic" `Quick
      test_fuzz_deterministic;
    Alcotest.test_case "CLI fuzz reports are --jobs invariant" `Slow
      test_cli_fuzz_jobs_invariant;
    Alcotest.test_case "injected SMW-guard bug is caught and shrunk small" `Slow
      test_chaos_bug_caught_and_shrunk;
    Alcotest.test_case "repro fixtures round-trip save/load/replay" `Slow
      test_repro_roundtrip;
    Alcotest.test_case "checked-in shrunk fixtures regress both ways" `Slow
      test_shrunk_fixtures_regress;
    Alcotest.test_case "golden snapshots match byte-for-byte" `Quick
      test_snapshots_match;
    Alcotest.test_case "snapshot drift is detected" `Quick
      test_snapshot_drift_detected;
    QCheck_alcotest.to_alcotest qcheck_brute_matches_exact;
    Alcotest.test_case "brute_force refuses > 20 candidates" `Quick
      test_brute_force_candidate_limit;
    Alcotest.test_case "oracle registry is well-formed" `Quick
      test_oracle_registry;
    Alcotest.test_case "oracles skip malformed subjects" `Quick
      test_oracle_guard_rails;
  ]
