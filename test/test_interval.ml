open Util

let check_float = Alcotest.(check (float 1e-12))

let test_make_invalid () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Interval.make: lo > hi") (fun () ->
      ignore (Interval.make 2.0 1.0))

let test_basic () =
  let i = Interval.make 1.0 3.0 in
  check_float "length" 2.0 (Interval.length i);
  Alcotest.(check bool) "contains" true (Interval.contains i 2.0);
  Alcotest.(check bool) "boundary" true (Interval.contains i 3.0);
  Alcotest.(check bool) "outside" false (Interval.contains i 3.5)

let test_intersect () =
  let a = Interval.make 0.0 2.0 and b = Interval.make 1.0 3.0 in
  (match Interval.intersect a b with
  | Some i ->
      check_float "lo" 1.0 i.Interval.lo;
      check_float "hi" 2.0 i.Interval.hi
  | None -> Alcotest.fail "expected overlap");
  let c = Interval.make 5.0 6.0 in
  Alcotest.(check bool) "disjoint" true (Interval.intersect a c = None)

let test_set_merge () =
  let s =
    Interval.Set.of_intervals
      [ Interval.make 0.0 1.0; Interval.make 0.5 2.0; Interval.make 3.0 4.0 ]
  in
  let is = Interval.Set.to_intervals s in
  Alcotest.(check int) "two components" 2 (List.length is);
  check_float "measure" 3.0 (Interval.Set.measure s)

let test_set_touching_merge () =
  let s = Interval.Set.of_intervals [ Interval.make 0.0 1.0; Interval.make 1.0 2.0 ] in
  Alcotest.(check int) "merged" 1 (List.length (Interval.Set.to_intervals s));
  check_float "measure" 2.0 (Interval.Set.measure s)

let test_set_inter () =
  let a = Interval.Set.of_intervals [ Interval.make 0.0 2.0; Interval.make 4.0 6.0 ] in
  let b = Interval.Set.of_intervals [ Interval.make 1.0 5.0 ] in
  let i = Interval.Set.inter a b in
  check_float "measure" 2.0 (Interval.Set.measure i);
  Alcotest.(check bool) "member" true (Interval.Set.contains i 1.5);
  Alcotest.(check bool) "gap" false (Interval.Set.contains i 3.0)

let test_set_empty () =
  Alcotest.(check bool) "empty" true (Interval.Set.is_empty Interval.Set.empty);
  check_float "zero measure" 0.0 (Interval.Set.measure Interval.Set.empty)

let qcheck_measure_subadditive =
  let interval_gen =
    QCheck.Gen.(
      map
        (fun (a, len) -> Interval.make a (a +. Float.abs len))
        (pair (float_bound_inclusive 100.0) (float_bound_inclusive 10.0)))
  in
  let set_gen = QCheck.Gen.(map Interval.Set.of_intervals (list_size (int_range 0 8) interval_gen)) in
  QCheck.Test.make ~name:"union measure <= sum of measures" ~count:200
    (QCheck.make QCheck.Gen.(pair set_gen set_gen))
    (fun (a, b) ->
      let u = Interval.Set.union a b in
      Interval.Set.measure u <= Interval.Set.measure a +. Interval.Set.measure b +. 1e-9)

let qcheck_inter_bounded =
  let interval_gen =
    QCheck.Gen.(
      map
        (fun (a, len) -> Interval.make a (a +. Float.abs len))
        (pair (float_bound_inclusive 100.0) (float_bound_inclusive 10.0)))
  in
  let set_gen = QCheck.Gen.(map Interval.Set.of_intervals (list_size (int_range 0 8) interval_gen)) in
  QCheck.Test.make ~name:"intersection measure <= min measure" ~count:200
    (QCheck.make QCheck.Gen.(pair set_gen set_gen))
    (fun (a, b) ->
      let i = Interval.Set.inter a b in
      Interval.Set.measure i
      <= Float.min (Interval.Set.measure a) (Interval.Set.measure b) +. 1e-9)

let suite =
  [
    Alcotest.test_case "make invalid" `Quick test_make_invalid;
    Alcotest.test_case "basic" `Quick test_basic;
    Alcotest.test_case "intersect" `Quick test_intersect;
    Alcotest.test_case "set merge" `Quick test_set_merge;
    Alcotest.test_case "set touching merge" `Quick test_set_touching_merge;
    Alcotest.test_case "set inter" `Quick test_set_inter;
    Alcotest.test_case "set empty" `Quick test_set_empty;
    QCheck_alcotest.to_alcotest qcheck_measure_subadditive;
    QCheck_alcotest.to_alcotest qcheck_inter_bounded;
  ]
