open Util

let check_float = Alcotest.(check (float 1e-12))

let test_make_invalid () =
  Alcotest.check_raises "lo > hi" (Invalid_argument "Interval.make: lo > hi") (fun () ->
      ignore (Interval.make 2.0 1.0))

let test_basic () =
  let i = Interval.make 1.0 3.0 in
  check_float "length" 2.0 (Interval.length i);
  Alcotest.(check bool) "contains" true (Interval.contains i 2.0);
  Alcotest.(check bool) "boundary" true (Interval.contains i 3.0);
  Alcotest.(check bool) "outside" false (Interval.contains i 3.5)

let test_intersect () =
  let a = Interval.make 0.0 2.0 and b = Interval.make 1.0 3.0 in
  (match Interval.intersect a b with
  | Some i ->
      check_float "lo" 1.0 i.Interval.lo;
      check_float "hi" 2.0 i.Interval.hi
  | None -> Alcotest.fail "expected overlap");
  let c = Interval.make 5.0 6.0 in
  Alcotest.(check bool) "disjoint" true (Interval.intersect a c = None)

let test_set_merge () =
  let s =
    Interval.Set.of_intervals
      [ Interval.make 0.0 1.0; Interval.make 0.5 2.0; Interval.make 3.0 4.0 ]
  in
  let is = Interval.Set.to_intervals s in
  Alcotest.(check int) "two components" 2 (List.length is);
  check_float "measure" 3.0 (Interval.Set.measure s)

let test_set_touching_merge () =
  let s = Interval.Set.of_intervals [ Interval.make 0.0 1.0; Interval.make 1.0 2.0 ] in
  Alcotest.(check int) "merged" 1 (List.length (Interval.Set.to_intervals s));
  check_float "measure" 2.0 (Interval.Set.measure s)

let test_set_inter () =
  let a = Interval.Set.of_intervals [ Interval.make 0.0 2.0; Interval.make 4.0 6.0 ] in
  let b = Interval.Set.of_intervals [ Interval.make 1.0 5.0 ] in
  let i = Interval.Set.inter a b in
  check_float "measure" 2.0 (Interval.Set.measure i);
  Alcotest.(check bool) "member" true (Interval.Set.contains i 1.5);
  Alcotest.(check bool) "gap" false (Interval.Set.contains i 3.0)

let test_set_empty () =
  Alcotest.(check bool) "empty" true (Interval.Set.is_empty Interval.Set.empty);
  check_float "zero measure" 0.0 (Interval.Set.measure Interval.Set.empty)

let qcheck_measure_subadditive =
  let interval_gen =
    QCheck.Gen.(
      map
        (fun (a, len) -> Interval.make a (a +. Float.abs len))
        (pair (float_bound_inclusive 100.0) (float_bound_inclusive 10.0)))
  in
  let set_gen = QCheck.Gen.(map Interval.Set.of_intervals (list_size (int_range 0 8) interval_gen)) in
  QCheck.Test.make ~name:"union measure <= sum of measures" ~count:200
    (QCheck.make QCheck.Gen.(pair set_gen set_gen))
    (fun (a, b) ->
      let u = Interval.Set.union a b in
      Interval.Set.measure u <= Interval.Set.measure a +. Interval.Set.measure b +. 1e-9)

let qcheck_inter_bounded =
  let interval_gen =
    QCheck.Gen.(
      map
        (fun (a, len) -> Interval.make a (a +. Float.abs len))
        (pair (float_bound_inclusive 100.0) (float_bound_inclusive 10.0)))
  in
  let set_gen = QCheck.Gen.(map Interval.Set.of_intervals (list_size (int_range 0 8) interval_gen)) in
  QCheck.Test.make ~name:"intersection measure <= min measure" ~count:200
    (QCheck.make QCheck.Gen.(pair set_gen set_gen))
    (fun (a, b) ->
      let i = Interval.Set.inter a b in
      Interval.Set.measure i
      <= Float.min (Interval.Set.measure a) (Interval.Set.measure b) +. 1e-9)

(* ---- outward-rounded extended arithmetic ---- *)

let is_whole (i : Interval.t) = i.Interval.lo = neg_infinity && i.Interval.hi = infinity

let test_zero_straddling_div () =
  let a = Interval.make 1.0 2.0 in
  Alcotest.(check bool) "straddling denominator -> whole" true
    (is_whole (Interval.div a (Interval.make (-1.0) 1.0)));
  Alcotest.(check bool) "denominator touching zero at lo -> whole" true
    (is_whole (Interval.div a (Interval.make 0.0 1.0)));
  Alcotest.(check bool) "denominator touching zero at hi -> whole" true
    (is_whole (Interval.div a (Interval.make (-1.0) 0.0)));
  Alcotest.(check bool) "inv through zero -> whole" true
    (is_whole (Interval.inv (Interval.make (-2.0) 3.0)));
  (* bounded away from zero: finite, outward-rounded, correct orientation *)
  let q = Interval.div (Interval.make 1.0 2.0) (Interval.make 4.0 8.0) in
  Alcotest.(check bool) "bounded quotient encloses exact range" true
    (q.Interval.lo <= 0.125 && q.Interval.hi >= 0.5 && Interval.is_bounded q)

let test_outward_rounding () =
  (* 0.1 + 0.2 is inexact: the enclosure must strictly contain the
     float sum in both directions, by at least one ulp each side *)
  let s = Interval.add (Interval.point 0.1) (Interval.point 0.2) in
  let fl = 0.1 +. 0.2 in
  Alcotest.(check bool) "sum enclosed strictly" true
    (s.Interval.lo < fl && fl < s.Interval.hi);
  Alcotest.(check bool) "one ulp each side" true
    (s.Interval.lo = Float.pred fl && s.Interval.hi = Float.succ fl);
  (* outward rounding is an identity at the infinities: widening
     max_float must saturate rather than wrap *)
  let big = Interval.mul (Interval.point Float.max_float) (Interval.point 2.0) in
  Alcotest.(check bool) "overflow saturates to +inf" true (big.Interval.hi = infinity);
  let m = Interval.mul (Interval.make 2.0 3.0) (Interval.make (-5.0) 7.0) in
  Alcotest.(check bool) "mul endpoint enclosure" true
    (m.Interval.lo <= -15.0 && m.Interval.hi >= 21.0)

let test_nan_inf_propagation () =
  Alcotest.(check bool) "point nan -> whole" true (is_whole (Interval.point Float.nan));
  (* unbounded intervals are records, not [make] (which guards finite
     user input); the extended ops must still be total on them *)
  let upper = { Interval.lo = 0.0; hi = infinity } in
  Alcotest.(check bool) "inf - inf -> whole" true
    (is_whole (Interval.sub upper upper));
  Alcotest.(check bool) "0 * inf -> whole" true
    (is_whole
       (Interval.mul (Interval.point 0.0) { Interval.lo = 1.0; hi = infinity }));
  let w = Interval.add Interval.whole (Interval.point 1.0) in
  Alcotest.(check bool) "whole absorbs" true (is_whole w);
  Alcotest.(check bool) "sqrt of negative-crossing clamps lo" true
    ((Interval.sqrt (Interval.make (-1.0) 4.0)).Interval.lo = 0.0);
  Alcotest.(check bool) "abs of straddling" true
    ((Interval.abs (Interval.make (-3.0) 2.0)).Interval.lo = 0.0)

(* the load-bearing property for certification: the interval magnitude
   of H(jω) encloses every point evaluation across random rational
   forms and random frequency boxes *)
let qcheck_ratfunc_enclosure =
  let coeffs_gen =
    QCheck.Gen.(
      list_size (int_range 1 5)
        (map (fun (m, e) -> m *. (10.0 ** e))
           (pair (float_range (-10.0) 10.0) (float_range (-3.0) 3.0))))
  in
  let case_gen =
    QCheck.Gen.(
      pair (pair coeffs_gen coeffs_gen)
        (pair (float_range 0.0 6.0) (float_range 0.0 0.5)))
  in
  QCheck.Test.make ~name:"magnitude_jw_box encloses 1k point evaluations" ~count:1000
    (QCheck.make case_gen)
    (fun ((num, den), (log_f, width)) ->
      let num = Array.of_list num and den = Array.of_list den in
      if Array.for_all (fun c -> c = 0.0) den then true
      else begin
        let h = Linalg.Ratfunc.make (Linalg.Poly.of_coeffs num) (Linalg.Poly.of_coeffs den) in
        let w_lo = 2.0 *. Float.pi *. (10.0 ** log_f) in
        let w_hi = w_lo *. (10.0 ** width) in
        let box =
          Linalg.Ratfunc.magnitude_jw_box h (Interval.make w_lo w_hi)
        in
        (* 7 probes across the box, endpoints included *)
        let ok = ref true in
        for k = 0 to 6 do
          let w = w_lo +. ((w_hi -. w_lo) *. float_of_int k /. 6.0) in
          let v = Complex.norm (Linalg.Ratfunc.eval_jw h w) in
          (* the box bounds the exact real value; the float point
             evaluation can sit a few ulps outside it, so compare with
             a tiny relative slack *)
          let slack = 1e-9 *. Float.max 1.0 (Float.abs v) in
          if Float.is_finite v && (v < box.Interval.lo -. slack || v > box.Interval.hi +. slack)
          then ok := false
        done;
        !ok
      end)

let suite =
  [
    Alcotest.test_case "make invalid" `Quick test_make_invalid;
    Alcotest.test_case "basic" `Quick test_basic;
    Alcotest.test_case "intersect" `Quick test_intersect;
    Alcotest.test_case "set merge" `Quick test_set_merge;
    Alcotest.test_case "set touching merge" `Quick test_set_touching_merge;
    Alcotest.test_case "set inter" `Quick test_set_inter;
    Alcotest.test_case "set empty" `Quick test_set_empty;
    Alcotest.test_case "zero-straddling division" `Quick test_zero_straddling_div;
    Alcotest.test_case "outward rounding" `Quick test_outward_rounding;
    Alcotest.test_case "nan/inf propagation" `Quick test_nan_inf_propagation;
    QCheck_alcotest.to_alcotest qcheck_measure_subadditive;
    QCheck_alcotest.to_alcotest qcheck_inter_bounded;
    QCheck_alcotest.to_alcotest qcheck_ratfunc_enclosure;
  ]
