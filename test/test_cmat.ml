open Linalg

let c re im = Complex.{ re; im }
let cr re = c re 0.0

let complex_close ?(tol = 1e-9) a b = Complex.norm (Complex.sub a b) <= tol

let check_complex msg expected actual =
  if not (complex_close expected actual) then
    Alcotest.fail
      (Printf.sprintf "%s: expected %g%+gi, got %g%+gi" msg expected.Complex.re
         expected.Complex.im actual.Complex.re actual.Complex.im)

let test_identity_solve () =
  let m = Cmat.identity 3 in
  let b = [| cr 1.0; cr 2.0; cr 3.0 |] in
  let x = Cmat.solve m b in
  Array.iteri (fun i v -> check_complex "id" b.(i) v) x

let test_solve_2x2 () =
  (* [1 2; 3 4] x = [5; 11]  =>  x = [1; 2] *)
  let m = Cmat.of_arrays [| [| cr 1.0; cr 2.0 |]; [| cr 3.0; cr 4.0 |] |] in
  let x = Cmat.solve m [| cr 5.0; cr 11.0 |] in
  check_complex "x0" (cr 1.0) x.(0);
  check_complex "x1" (cr 2.0) x.(1)

let test_complex_solve () =
  (* (1+i) x = 2  =>  x = 1 - i *)
  let m = Cmat.of_arrays [| [| c 1.0 1.0 |] |] in
  let x = Cmat.solve m [| cr 2.0 |] in
  check_complex "x" (c 1.0 (-1.0)) x.(0)

let test_singular () =
  let m = Cmat.of_arrays [| [| cr 1.0; cr 2.0 |]; [| cr 2.0; cr 4.0 |] |] in
  (match Cmat.lu_factor m with
  | exception Cmat.Singular -> ()
  | _ -> Alcotest.fail "expected Singular");
  check_complex "det" Complex.zero (Cmat.determinant m)

let test_near_singular () =
  (* Rows equal to within one ulp: numerically rank-1 at this scale.
     The growth-aware pivot threshold (n·ε·4·‖A‖∞ ≈ 5e-15 here) must
     flag it; the old ‖A‖∞·1e-14·ε threshold (≈ 7e-30) accepted the
     ~2e-15 cancellation residue as a pivot and returned garbage. *)
  let m =
    Cmat.of_arrays [| [| cr 1.0; cr 2.0 |]; [| cr (1.0 +. 1e-15); cr 2.0 |] |]
  in
  match Cmat.lu_factor m with
  | exception Cmat.Singular -> ()
  | _ -> Alcotest.fail "expected Singular for a numerically rank-1 matrix"

let test_determinant () =
  let m = Cmat.of_arrays [| [| cr 1.0; cr 2.0 |]; [| cr 3.0; cr 4.0 |] |] in
  check_complex "det" (cr (-2.0)) (Cmat.determinant m);
  let p = Cmat.of_arrays [| [| cr 0.0; cr 1.0 |]; [| cr 1.0; cr 0.0 |] |] in
  check_complex "permutation det" (cr (-1.0)) (Cmat.determinant p)

let test_inverse () =
  let m = Cmat.of_arrays [| [| cr 4.0; cr 7.0 |]; [| cr 2.0; cr 6.0 |] |] in
  let inv = Cmat.inverse m in
  let prod = Cmat.mul m inv in
  for i = 0 to 1 do
    for j = 0 to 1 do
      let expected = if i = j then Complex.one else Complex.zero in
      check_complex "m*m^-1" expected (Cmat.get prod i j)
    done
  done

let test_mul_vec () =
  let m = Cmat.of_arrays [| [| cr 1.0; cr 2.0 |]; [| cr 3.0; cr 4.0 |] |] in
  let y = Cmat.mul_vec m [| cr 1.0; cr 1.0 |] in
  check_complex "y0" (cr 3.0) y.(0);
  check_complex "y1" (cr 7.0) y.(1)

let test_transpose () =
  let m = Cmat.of_arrays [| [| cr 1.0; cr 2.0; cr 3.0 |] |] in
  let t = Cmat.transpose m in
  Alcotest.(check int) "rows" 3 (Cmat.rows t);
  Alcotest.(check int) "cols" 1 (Cmat.cols t);
  check_complex "entry" (cr 2.0) (Cmat.get t 1 0)

let test_bounds () =
  let m = Cmat.create 2 2 in
  Alcotest.check_raises "out of bounds"
    (Invalid_argument "Cmat: index (2, 0) out of bounds for 2x2") (fun () ->
      ignore (Cmat.get m 2 0))

let random_matrix rng n =
  Cmat.of_arrays
    (Array.init n (fun _ ->
         Array.init n (fun _ ->
             c (QCheck.Gen.float_range (-10.0) 10.0 rng) (QCheck.Gen.float_range (-10.0) 10.0 rng))))

let qcheck_solve_residual =
  QCheck.Test.make ~name:"LU solve has small residual" ~count:100
    (QCheck.make QCheck.Gen.(pair (int_range 1 12) (int_range 0 1000000)))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let m = random_matrix rng n in
      let b =
        Array.init n (fun _ ->
            c (QCheck.Gen.float_range (-10.0) 10.0 rng) (QCheck.Gen.float_range (-10.0) 10.0 rng))
      in
      match Cmat.solve m b with
      | x -> Cmat.residual_norm m x b <= 1e-7 *. Float.max 1.0 (Cmat.norm_inf m)
      | exception Cmat.Singular -> true (* random singular matrices are legal *))

let qcheck_det_product =
  QCheck.Test.make ~name:"det(AB) = det(A) det(B)" ~count:50
    (QCheck.make QCheck.Gen.(pair (int_range 1 6) (int_range 0 1000000)))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let a = random_matrix rng n and b = random_matrix rng n in
      let da = Cmat.determinant a and db = Cmat.determinant b in
      let dab = Cmat.determinant (Cmat.mul a b) in
      let expected = Complex.mul da db in
      Complex.norm (Complex.sub dab expected)
      <= 1e-6 *. Float.max 1.0 (Complex.norm expected))

let suite =
  [
    Alcotest.test_case "identity solve" `Quick test_identity_solve;
    Alcotest.test_case "solve 2x2" `Quick test_solve_2x2;
    Alcotest.test_case "complex solve" `Quick test_complex_solve;
    Alcotest.test_case "singular" `Quick test_singular;
    Alcotest.test_case "near-singular" `Quick test_near_singular;
    Alcotest.test_case "determinant" `Quick test_determinant;
    Alcotest.test_case "inverse" `Quick test_inverse;
    Alcotest.test_case "mul_vec" `Quick test_mul_vec;
    Alcotest.test_case "transpose" `Quick test_transpose;
    Alcotest.test_case "bounds check" `Quick test_bounds;
    QCheck_alcotest.to_alcotest qcheck_solve_residual;
    QCheck_alcotest.to_alcotest qcheck_det_product;
  ]
