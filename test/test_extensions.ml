(* Tests for the extension features: phase-based detection, criterion
   union, finite-bandwidth followers, test-frequency planning and
   Monte-Carlo tolerance analysis. *)

module Netlist = Circuit.Netlist
module Detect = Testability.Detect
module P = Mcdft_core.Pipeline
module O = Mcdft_core.Optimizer

let rc ~r ~c () =
  Netlist.empty ~title:"rc" ()
  |> Netlist.vsource ~name:"V1" "in" "0" 1.0
  |> Netlist.resistor ~name:"R1" "in" "out" r
  |> Netlist.capacitor ~name:"C1" "out" "0" c

let probe = { Detect.source = "V1"; output = "out" }
let grid = Testability.Grid.around ~points_per_decade:15 ~center_hz:159.0 ()

(* --- phase criterion --- *)

let test_phase_deviation_values () =
  let c m a = Complex.{ re = m *. cos a; im = m *. sin a } in
  let dev =
    Detect.phase_deviation
      ~nominal:[| c 1.0 0.0; c 1.0 3.0; c 2.0 0.5 |]
      ~faulty:[| c 5.0 0.1; c 1.0 (-3.0); c 0.1 0.5 |]
  in
  Alcotest.(check (float 1e-9)) "plain" 0.1 dev.(0);
  (* 3 vs -3 rad wraps to 2pi - 6 *)
  Alcotest.(check (float 1e-9)) "wrapped" ((2.0 *. Float.pi) -. 6.0) dev.(1);
  Alcotest.(check (float 1e-9)) "magnitude change only" 0.0 dev.(2)

let test_phase_criterion_detects_pole_shift () =
  (* an RC pole shift moves phase near the corner even where the
     magnitude change stays under a loose epsilon *)
  let n = rc ~r:1000.0 ~c:1e-6 () in
  let fault = Fault.deviation ~element:"R1" 1.2 in
  let by_magnitude =
    Detect.analyze_fault ~criterion:(Detect.Fixed_tolerance 0.5) probe grid n fault
  in
  Alcotest.(check bool) "magnitude misses at eps=50%" false
    by_magnitude.Detect.detectable;
  let by_phase =
    Detect.analyze_fault ~criterion:(Detect.Phase_fixed 0.05) probe grid n fault
  in
  Alcotest.(check bool) "phase catches" true by_phase.Detect.detectable

let test_any_of_is_union () =
  let n = rc ~r:1000.0 ~c:1e-6 () in
  let fault = Fault.deviation ~element:"R1" 1.2 in
  let mag = Detect.analyze_fault ~criterion:(Detect.Fixed_tolerance 0.1) probe grid n fault in
  let ph = Detect.analyze_fault ~criterion:(Detect.Phase_fixed 0.05) probe grid n fault in
  let both =
    Detect.analyze_fault
      ~criterion:(Detect.Any_of [ Detect.Fixed_tolerance 0.1; Detect.Phase_fixed 0.05 ])
      probe grid n fault
  in
  let m_union =
    Util.Interval.Set.measure
      (Util.Interval.Set.union mag.Detect.regions ph.Detect.regions)
  in
  Alcotest.(check (float 1e-9)) "union of regions" m_union
    (Util.Interval.Set.measure both.Detect.regions)

let test_phase_envelope_masks () =
  let n = rc ~r:1000.0 ~c:1e-6 () in
  let fault = Fault.deviation ~element:"R1" 1.04 in
  let r =
    Detect.analyze_fault
      ~criterion:(Detect.Phase_envelope { component_tol = 0.05; floor_rad = 0.01 })
      probe grid n fault
  in
  Alcotest.(check bool) "tolerance-sized fault masked in phase too" false
    r.Detect.detectable

(* --- finite-bandwidth followers --- *)

let test_follower_model_degrades_transparency () =
  let b = Circuits.Tow_thomas.make () in
  let dft = Multiconfig.Transform.make ~source:"Vin" ~output:"v2" b.Circuits.Benchmark.netlist in
  let transparent = Multiconfig.Configuration.transparent ~n_opamps:3 in
  let slow = Circuit.Element.Single_pole { dc_gain = 1e5; pole_hz = 10.0 } in
  let ideal_view = Multiconfig.Transform.emulate dft transparent in
  let slow_view = Multiconfig.Transform.emulate ~follower_model:slow dft transparent in
  let mag view f =
    Complex.norm
      (Mna.Ac.transfer ~source:"Vin" ~output:"v2" view ~omega:(2.0 *. Float.pi *. f))
  in
  (* far below GBW both are unity; approaching GBW the real buffers
     roll off (three in cascade) *)
  Alcotest.(check (float 1e-6)) "ideal stays unity" 1.0 (mag ideal_view 500_000.0);
  Alcotest.(check (float 1e-3)) "real buffer unity at low freq" 1.0 (mag slow_view 100.0);
  Alcotest.(check bool) "real buffers roll off near GBW" true
    (mag slow_view 500_000.0 < 0.9)

let test_follower_model_preserves_low_freq_matrix () =
  (* with a generous GBW the detectability analysis is unchanged in the
     audio band *)
  let b = Circuits.Tow_thomas.make () in
  let dft = Multiconfig.Transform.make ~source:"Vin" ~output:"v2" b.Circuits.Benchmark.netlist in
  let fast = Circuit.Element.Single_pole { dc_gain = 1e6; pole_hz = 100.0 } in
  let c2 = Multiconfig.Configuration.make ~n_opamps:3 2 in
  let w = 2.0 *. Float.pi *. 1000.0 in
  let ideal =
    Mna.Ac.transfer ~source:"Vin" ~output:"v2" (Multiconfig.Transform.emulate dft c2) ~omega:w
  in
  let real =
    Mna.Ac.transfer ~source:"Vin" ~output:"v2"
      (Multiconfig.Transform.emulate ~follower_model:fast dft c2)
      ~omega:w
  in
  Alcotest.(check (float 1e-3)) "same response in band" (Complex.norm ideal)
    (Complex.norm real)

(* --- test plan --- *)

let pipeline = lazy (P.run ~points_per_decade:15 (Circuits.Tow_thomas.make ()))

let test_plan_covers_everything () =
  let t = Lazy.force pipeline in
  let plan = Mcdft_core.Test_plan.build t in
  Alcotest.(check int) "all coverable faults covered"
    plan.Mcdft_core.Test_plan.total_coverable plan.Mcdft_core.Test_plan.covered;
  Alcotest.(check bool) "nonempty schedule" true
    (plan.Mcdft_core.Test_plan.measurements <> [])

let test_plan_is_small () =
  (* a handful of measurements should suffice for 8 faults in 2 configs *)
  let t = Lazy.force pipeline in
  let plan = Mcdft_core.Test_plan.build t in
  Alcotest.(check bool) "fewer measurements than faults" true
    (List.length plan.Mcdft_core.Test_plan.measurements
    <= List.length t.P.faults)

let test_plan_measurements_within_chosen_configs () =
  let t = Lazy.force pipeline in
  let r = P.optimize t in
  let plan = Mcdft_core.Test_plan.build t in
  List.iter
    (fun m ->
      Alcotest.(check bool) "config from choice A" true
        (List.mem m.Mcdft_core.Test_plan.config r.O.choice_a.O.configs))
    plan.Mcdft_core.Test_plan.measurements

let test_plan_witnesses_consistent () =
  let t = Lazy.force pipeline in
  let plan = Mcdft_core.Test_plan.build t in
  Alcotest.(check int) "one witness per covered fault"
    plan.Mcdft_core.Test_plan.covered
    (List.length plan.Mcdft_core.Test_plan.witnesses);
  let to_str = Mcdft_core.Test_plan.to_string plan in
  Alcotest.(check bool) "printable" true (String.length to_str > 0)

let test_plan_explicit_configs () =
  let t = Lazy.force pipeline in
  (* restricting to C0 alone covers only what C0 detects *)
  let plan = Mcdft_core.Test_plan.build ~configs:[ 0 ] t in
  let row0_coverage =
    Array.to_list t.P.matrix.Testability.Matrix.detect.(0)
    |> List.filter Fun.id |> List.length
  in
  Alcotest.(check int) "coverable = C0 row" row0_coverage
    plan.Mcdft_core.Test_plan.total_coverable

(* --- Monte Carlo --- *)

let test_montecarlo_deterministic () =
  let n = rc ~r:1000.0 ~c:1e-6 () in
  let a = Testability.Montecarlo.run ~seed:7 ~samples:50 ~component_tol:0.05 probe grid n in
  let b = Testability.Montecarlo.run ~seed:7 ~samples:50 ~component_tol:0.05 probe grid n in
  Alcotest.(check bool) "same seed, same stats" true
    (a.Testability.Montecarlo.per_sample_peak = b.Testability.Montecarlo.per_sample_peak)

let test_montecarlo_monotone_in_tolerance () =
  let n = rc ~r:1000.0 ~c:1e-6 () in
  let peak tol =
    let s = Testability.Montecarlo.run ~seed:3 ~samples:60 ~component_tol:tol probe grid n in
    Array.fold_left Float.max 0.0 s.Testability.Montecarlo.per_sample_peak
  in
  Alcotest.(check bool) "wider tolerance, wider deviation" true (peak 0.10 > peak 0.02)

let test_montecarlo_within_linear_envelope () =
  (* the linear worst-case envelope should dominate sampled good
     circuits up to second-order effects *)
  let n = rc ~r:1000.0 ~c:1e-6 () in
  let tol = 0.05 in
  let mc = Testability.Montecarlo.run ~seed:11 ~samples:100 ~component_tol:tol probe grid n in
  let nominal = Detect.nominal_response probe grid n in
  let prepared =
    Detect.prepare (Detect.Process_envelope { component_tol = tol; floor = 0.0 }) probe
      grid n ~nominal
  in
  ignore prepared;
  (* envelope = sum of single-component deviations at +tol *)
  let envelope = Array.make (Testability.Grid.n_points grid) 0.0 in
  List.iter
    (fun e ->
      let name = Circuit.Element.name e in
      let drifted = Fault.inject (Fault.deviation ~element:name (1.0 +. tol)) n in
      let resp = Detect.nominal_response probe grid drifted in
      let dev = Detect.response_deviation ~nominal ~faulty:resp in
      Array.iteri (fun i d -> envelope.(i) <- envelope.(i) +. d) dev)
    (Netlist.passives n);
  Array.iteri
    (fun i m ->
      if m > (envelope.(i) *. 1.1) +. 1e-6 then
        Alcotest.fail
          (Printf.sprintf "MC max %g exceeds envelope %g at point %d" m envelope.(i) i))
    mc.Testability.Montecarlo.max_dev

let test_false_alarm_rates () =
  let n = rc ~r:1000.0 ~c:1e-6 () in
  let mc = Testability.Montecarlo.run ~seed:5 ~samples:100 ~component_tol:0.05 probe grid n in
  let strict = Testability.Montecarlo.false_alarm_rate mc ~epsilon:0.001 in
  let loose = Testability.Montecarlo.false_alarm_rate mc ~epsilon:0.5 in
  (* R-up/C-down drifts can cancel in the RC product, so a few samples
     stay below even a tiny epsilon *)
  Alcotest.(check bool) "tiny epsilon rejects almost all" true (strict > 0.9);
  Alcotest.(check (float 0.0)) "huge epsilon accepts all" 0.0 loose;
  let mid = Testability.Montecarlo.false_alarm_rate mc ~epsilon:0.05 in
  Alcotest.(check bool) "monotone" true (mid >= loose && mid <= strict)

let suite =
  [
    Alcotest.test_case "phase deviation" `Quick test_phase_deviation_values;
    Alcotest.test_case "phase detects pole shift" `Quick test_phase_criterion_detects_pole_shift;
    Alcotest.test_case "any_of = union" `Quick test_any_of_is_union;
    Alcotest.test_case "phase envelope masks" `Quick test_phase_envelope_masks;
    Alcotest.test_case "follower bandwidth: transparency" `Quick test_follower_model_degrades_transparency;
    Alcotest.test_case "follower bandwidth: in band" `Quick test_follower_model_preserves_low_freq_matrix;
    Alcotest.test_case "test plan covers" `Quick test_plan_covers_everything;
    Alcotest.test_case "test plan small" `Quick test_plan_is_small;
    Alcotest.test_case "test plan configs" `Quick test_plan_measurements_within_chosen_configs;
    Alcotest.test_case "test plan witnesses" `Quick test_plan_witnesses_consistent;
    Alcotest.test_case "test plan explicit configs" `Quick test_plan_explicit_configs;
    Alcotest.test_case "montecarlo deterministic" `Quick test_montecarlo_deterministic;
    Alcotest.test_case "montecarlo monotone" `Quick test_montecarlo_monotone_in_tolerance;
    Alcotest.test_case "montecarlo vs envelope" `Quick test_montecarlo_within_linear_envelope;
    Alcotest.test_case "false alarm rates" `Quick test_false_alarm_rates;
  ]

(* --- minimal detectable deviation --- *)

let test_minimal_deviation_divider () =
  (* T = R2/(R1+R2) with R1 = R2: deviation of R1 by factor f gives
     relative output change (f-1)/(f+1); at eps = 10% the threshold
     factor is 11/9 *)
  let n =
    Netlist.empty ~title:"divider" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "out" 1000.0
    |> Netlist.resistor ~name:"R2" "out" "0" 1000.0
  in
  let g = Testability.Grid.make ~points_per_decade:4 ~f_lo:10.0 ~f_hi:1000.0 () in
  match
    Detect.minimal_detectable_deviation ~criterion:(Detect.Fixed_tolerance 0.1)
      { Detect.source = "V1"; output = "out" } g n ~element:"R1"
  with
  | None -> Alcotest.fail "expected detectable"
  | Some f -> Alcotest.(check (float 1e-3)) "11/9" (11.0 /. 9.0) f

let test_minimal_deviation_none () =
  (* an element that cannot affect the output at all *)
  let n =
    Netlist.empty ~title:"shielded" ()
    |> Netlist.vsource ~name:"V1" "in" "0" 1.0
    |> Netlist.resistor ~name:"R1" "in" "out" 1000.0
    |> Netlist.resistor ~name:"R2" "out" "0" 1000.0
    |> Netlist.resistor ~name:"R3" "in" "dead" 1000.0
    |> Netlist.resistor ~name:"R4" "dead" "0" 1000.0
  in
  let g = Testability.Grid.make ~points_per_decade:4 ~f_lo:10.0 ~f_hi:1000.0 () in
  Alcotest.(check bool) "R3 never detectable" true
    (Detect.minimal_detectable_deviation ~criterion:(Detect.Fixed_tolerance 0.1)
       { Detect.source = "V1"; output = "out" } g n ~element:"R3"
    = None)

let test_minimal_deviation_monotone_in_eps () =
  let b = Circuits.Tow_thomas.make () in
  let g = Testability.Grid.around ~points_per_decade:8 ~center_hz:1000.0 () in
  let p = { Detect.source = "Vin"; output = "v2" } in
  let at eps =
    Detect.minimal_detectable_deviation ~criterion:(Detect.Fixed_tolerance eps) p g
      b.Circuits.Benchmark.netlist ~element:"R4"
  in
  match (at 0.05, at 0.15) with
  | Some strict, Some loose ->
      Alcotest.(check bool) "looser eps needs bigger fault" true (loose > strict)
  | _ -> Alcotest.fail "expected both detectable"

(* --- diagnostic test plan --- *)

let test_diagnostic_plan_separates_pairs () =
  let t = Lazy.force pipeline in
  let plan = Mcdft_core.Test_plan.build_diagnostic t in
  Alcotest.(check int) "still covers everything"
    plan.Mcdft_core.Test_plan.total_coverable plan.Mcdft_core.Test_plan.covered;
  (* the schedule must separate every pair the full space separates:
     check via the diagnosis dictionary restricted to plan measurements *)
  let dict = Diagnosis.Dictionary.build t in
  let n_points = Array.length dict.Diagnosis.Dictionary.freqs_hz in
  let col_of m =
    let rec config_pos i = function
      | [] -> assert false
      | c :: rest ->
          if c = m.Mcdft_core.Test_plan.config then i else config_pos (i + 1) rest
    in
    let c = config_pos 0 dict.Diagnosis.Dictionary.configs in
    let k = ref 0 in
    Array.iteri
      (fun idx f ->
        if Float.abs (f -. m.Mcdft_core.Test_plan.freq_hz) < 1e-9 *. f then k := idx)
      dict.Diagnosis.Dictionary.freqs_hz;
    (c * n_points) + !k
  in
  let cols = List.map col_of plan.Mcdft_core.Test_plan.measurements in
  let restricted j = List.map (fun c -> dict.Diagnosis.Dictionary.signatures.(j).(c)) cols in
  let n_faults = Array.length dict.Diagnosis.Dictionary.faults in
  for j1 = 0 to n_faults - 1 do
    for j2 = j1 + 1 to n_faults - 1 do
      let full_separable =
        dict.Diagnosis.Dictionary.signatures.(j1) <> dict.Diagnosis.Dictionary.signatures.(j2)
      in
      if full_separable then
        Alcotest.(check bool)
          (Printf.sprintf "pair (%d,%d) separated by the schedule" j1 j2)
          true
          (restricted j1 <> restricted j2)
    done
  done

let test_diagnostic_plan_at_least_detection_size () =
  let t = Lazy.force pipeline in
  let detect_plan = Mcdft_core.Test_plan.build t in
  let all_configs =
    List.map Multiconfig.Configuration.index
      (Multiconfig.Transform.test_configurations t.P.dft)
  in
  let diag_plan = Mcdft_core.Test_plan.build_diagnostic ~configs:all_configs t in
  Alcotest.(check bool) "diagnosis needs at least as many measurements" true
    (List.length diag_plan.Mcdft_core.Test_plan.measurements
    >= List.length detect_plan.Mcdft_core.Test_plan.measurements)

let suite =
  suite
  @ [
      Alcotest.test_case "minimal deviation divider" `Quick test_minimal_deviation_divider;
      Alcotest.test_case "minimal deviation none" `Quick test_minimal_deviation_none;
      Alcotest.test_case "minimal deviation monotone" `Quick test_minimal_deviation_monotone_in_eps;
      Alcotest.test_case "diagnostic plan separates" `Quick test_diagnostic_plan_separates_pairs;
      Alcotest.test_case "diagnostic plan size" `Quick test_diagnostic_plan_at_least_detection_size;
    ]

(* --- test time --- *)

let test_settle_time_reflects_poles () =
  let t = Lazy.force pipeline in
  (* C0 of the 1 kHz biquad: dominant pole ~ -pi*1000, so settling
     within tens of milliseconds *)
  let s = Mcdft_core.Test_time.settle_time_s t 0 in
  Alcotest.(check bool) (Printf.sprintf "settle %g s plausible" s) true
    (s > 1e-4 && s < 0.1)

let test_estimate_positive_and_additive () =
  let t = Lazy.force pipeline in
  let plan = Mcdft_core.Test_plan.build t in
  let total = Mcdft_core.Test_time.estimate_s t plan in
  Alcotest.(check bool) "positive" true (total > 0.0);
  (* a diagnosis plan cannot be faster than the detection plan over the
     same configurations if it contains more measurements there *)
  let diag = Mcdft_core.Test_plan.build_diagnostic t in
  let total_diag = Mcdft_core.Test_time.estimate_s t diag in
  Alcotest.(check bool) "finite" true (Float.is_finite total_diag)

let test_compare_sets_ranks () =
  let t = Lazy.force pipeline in
  let r = P.optimize t in
  let sets = List.map Cover.Clause.IntSet.elements r.O.min_config_sets in
  let ranked = Mcdft_core.Test_time.compare_sets t sets in
  Alcotest.(check int) "all sets ranked" (List.length sets) (List.length ranked);
  (match ranked with
  | (_, t1) :: rest ->
      List.iter (fun (_, t2) -> Alcotest.(check bool) "sorted" true (t1 <= t2)) rest
  | [] -> Alcotest.fail "no sets")

let suite =
  suite
  @ [
      Alcotest.test_case "settle time" `Quick test_settle_time_reflects_poles;
      Alcotest.test_case "estimate positive" `Quick test_estimate_positive_and_additive;
      Alcotest.test_case "compare sets" `Quick test_compare_sets_ranks;
    ]

(* --- embedded block access --- *)

let test_block_access_reports () =
  let t = Lazy.force pipeline in
  let reports = Mcdft_core.Block_access.per_opamp t in
  Alcotest.(check int) "one per opamp" 3 (List.length reports);
  List.iter
    (fun (r : Mcdft_core.Block_access.report) ->
      (* the access configuration of OPk is all-follower except k *)
      Alcotest.(check (list int)) "followers are the others"
        (List.filter (fun i -> i <> r.Mcdft_core.Block_access.but) [ 0; 1; 2 ])
        (Multiconfig.Configuration.followers r.Mcdft_core.Block_access.access);
      Alcotest.(check bool) "coverage bounds" true
        (r.Mcdft_core.Block_access.coverage_access >= 0.0
        && r.Mcdft_core.Block_access.coverage_access <= 1.0))
    reports

let test_block_access_beats_in_situ () =
  (* testing OP2's integrator through its access configuration must
     cover its own components at least as well as C0 does *)
  let t = Lazy.force pipeline in
  let reports = Mcdft_core.Block_access.per_opamp t in
  let r2 =
    List.find (fun r -> r.Mcdft_core.Block_access.but = 1) reports
  in
  Alcotest.(check bool) "scope non-empty" true
    (r2.Mcdft_core.Block_access.faults_in_scope <> []);
  Alcotest.(check bool)
    (Printf.sprintf "access %.2f >= in-situ %.2f"
       r2.Mcdft_core.Block_access.coverage_access
       r2.Mcdft_core.Block_access.coverage_functional)
    true
    (r2.Mcdft_core.Block_access.coverage_access
    >= r2.Mcdft_core.Block_access.coverage_functional);
  Alcotest.(check (float 1e-9)) "full coverage of the block" 1.0
    r2.Mcdft_core.Block_access.coverage_access

let suite =
  suite
  @ [
      Alcotest.test_case "block access reports" `Quick test_block_access_reports;
      Alcotest.test_case "block access beats in-situ" `Quick test_block_access_beats_in_situ;
    ]
