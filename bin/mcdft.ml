(* mcdft — multi-configuration DFT analysis for analog circuits.

   Subcommands:
     list                   the built-in benchmark circuits
     show     CIRCUIT       print the netlist in SPICE form
     lint     CIRCUIT       static analysis: validation, structural rank,
                            configuration-space diagnostics
     tf       CIRCUIT       symbolic transfer function, poles and zeros
     certify  CIRCUIT       interval-certified detectability verdicts
     analyze  CIRCUIT       functional-configuration testability (Graph 1)
     matrix   CIRCUIT       detectability matrices over all configurations
     optimize CIRCUIT       the full ordered-requirements optimization
     fuzz                   differential conformance fuzzing of the engines

   CIRCUIT is either a benchmark name from `mcdft list` or a path to a
   SPICE netlist. *)

open Cmdliner

module O = Mcdft_core.Optimizer
module P = Mcdft_core.Pipeline
module PF = Mcdft_core.Prefilter
module IntSet = Cover.Clause.IntSet

(* ---- exit codes (documented in the man page footer) ----

     0  success
     1  circuit loading / invalid input
     3  singular MNA system (reached the solver anyway)
     4  a fault references an element absent from the netlist
     5  I/O error
     6  lint findings of error severity
   (2 and 124/125 remain cmdliner's usage/internal errors.) *)

let die code fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "mcdft: %s\n" msg;
      exit code)
    fmt

(* ---- loading circuits ---- *)

let estimate_center_hz ~source ~output netlist =
  match Mna.Symbolic.poles ~source ~output netlist with
  | exception Mna.Symbolic.Singular_circuit _ -> 1000.0
  | [||] -> 1000.0
  | poles ->
      let magnitudes =
        Array.to_list (Array.map Complex.norm poles)
        |> List.filter (fun m -> m > 1e-3)
      in
      if magnitudes = [] then 1000.0
      else begin
        let log_mean =
          List.fold_left (fun acc m -> acc +. log m) 0.0 magnitudes
          /. float_of_int (List.length magnitudes)
        in
        exp log_mean /. (2.0 *. Float.pi)
      end

let default_source netlist =
  List.find_map
    (function Circuit.Element.Vsource { name; _ } -> Some name | _ -> None)
    (Circuit.Netlist.elements netlist)

let default_output netlist =
  match List.rev (Circuit.Netlist.opamps netlist) with
  | Circuit.Element.Opamp { out; _ } :: _ -> Some out
  | _ -> None

let load_circuit name ~source ~output =
  match Circuits.Registry.find name with
  | Some b -> Ok b
  | None -> (
      if not (Sys.file_exists name) then
        Error
          (Printf.sprintf "%S is neither a benchmark (see `mcdft list`) nor a file" name)
      else
        match Spice.Parser.parse_file_with_lines name with
        | Error e -> Error (Printf.sprintf "%s: %s" name (Spice.Parser.error_to_string e))
        | Ok (netlist, lines) -> (
            (* pre-flight lint: catch structurally singular or invalid
               netlists here, with element/line diagnostics, instead of
               dying deep in the solver with a bare Singular *)
            let src = { Analysis.Lint.file = name; lines } in
            (match Analysis.Finding.errors (Analysis.Lint.netlist_findings ~src netlist) with
            | [] -> ()
            | errors ->
                List.iter
                  (fun f -> Printf.eprintf "%s\n" (Analysis.Finding.to_string f))
                  errors;
                die 6 "%s: %s — run `mcdft lint %s` for the full report" name
                  (Analysis.Finding.summary errors) name);
            match
              ( (match source with Some s -> Some s | None -> default_source netlist),
                match output with Some o -> Some o | None -> default_output netlist )
            with
            | None, _ -> Error "no voltage source found; pass --source"
            | _, None -> Error "no opamp output found; pass --output"
            | Some source, Some output ->
                let center_hz = estimate_center_hz ~source ~output netlist in
                Ok
                  {
                    Circuits.Benchmark.name = Filename.basename name;
                    description = Circuit.Netlist.title netlist;
                    netlist;
                    source;
                    output;
                    center_hz;
                  }))

let parse_one_criterion s =
  match String.split_on_char ':' (String.lowercase_ascii s) with
  | [ "fixed"; eps ] -> (
      match float_of_string_opt eps with
      | Some e when e > 0.0 -> Ok (Testability.Detect.Fixed_tolerance e)
      | _ -> Error (`Msg "fixed criterion needs a positive epsilon, e.g. fixed:0.1"))
  | [ "envelope"; tol; floor ] -> (
      match (float_of_string_opt tol, float_of_string_opt floor) with
      | Some t, Some f when t > 0.0 && f >= 0.0 ->
          Ok (Testability.Detect.Process_envelope { component_tol = t; floor = f })
      | _ -> Error (`Msg "envelope criterion needs tol and floor, e.g. envelope:0.04:0.02"))
  | [ "phase"; rad ] -> (
      match float_of_string_opt rad with
      | Some r when r > 0.0 -> Ok (Testability.Detect.Phase_fixed r)
      | _ -> Error (`Msg "phase criterion needs a positive angle in radians, e.g. phase:0.1"))
  | [ "phase-envelope"; tol; floor ] -> (
      match (float_of_string_opt tol, float_of_string_opt floor) with
      | Some t, Some f when t > 0.0 && f >= 0.0 ->
          Ok (Testability.Detect.Phase_envelope { component_tol = t; floor_rad = f })
      | _ ->
          Error (`Msg "phase-envelope needs tol and floor, e.g. phase-envelope:0.04:0.05"))
  | _ ->
      Error
        (`Msg
          "criterion must be fixed:EPS, envelope:TOL:FLOOR, phase:RAD or \
           phase-envelope:TOL:FLOOR (combine with ,)")

(* a comma-separated list is the union of criteria *)
let parse_criterion s =
  match String.split_on_char ',' s with
  | [ one ] -> parse_one_criterion one
  | many -> (
      let parsed = List.map parse_one_criterion many in
      match
        List.find_map (function Error e -> Some (Error e) | Ok _ -> None) parsed
      with
      | Some err -> err
      | None ->
          Ok
            (Testability.Detect.Any_of
               (List.filter_map (function Ok c -> Some c | Error _ -> None) parsed)))

let rec criterion_str = function
  | Testability.Detect.Fixed_tolerance e -> Printf.sprintf "fixed:%g" e
  | Testability.Detect.Process_envelope { component_tol; floor } ->
      Printf.sprintf "envelope:%g:%g" component_tol floor
  | Testability.Detect.Phase_fixed r -> Printf.sprintf "phase:%g" r
  | Testability.Detect.Phase_envelope { component_tol; floor_rad } ->
      Printf.sprintf "phase-envelope:%g:%g" component_tol floor_rad
  | Testability.Detect.Any_of l -> String.concat "," (List.map criterion_str l)

let criterion_conv =
  Arg.conv
    ( (fun s -> parse_criterion s),
      fun ppf c -> Format.fprintf ppf "%s" (criterion_str c) )

(* ---- common options ---- *)

let circuit_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT"
         ~doc:"Benchmark name or SPICE netlist file.")

let source_opt =
  Arg.(value & opt (some string) None & info [ "source" ] ~docv:"NAME"
         ~doc:"Driving voltage source (files only; default: first V card).")

let output_opt =
  Arg.(value & opt (some string) None & info [ "output" ] ~docv:"NODE"
         ~doc:"Observed output node (files only; default: last opamp output).")

let criterion_opt =
  Arg.(value & opt criterion_conv P.default_criterion
       & info [ "criterion" ] ~docv:"CRIT"
           ~doc:"Detectability criterion: fixed:EPS or envelope:TOL:FLOOR.")

let positive_int =
  Arg.conv
    ( (fun s ->
        match int_of_string_opt s with
        | Some n when n > 0 -> Ok n
        | _ -> Error (`Msg "expected a positive integer")),
      Format.pp_print_int )

let ppd_opt =
  Arg.(value & opt positive_int 30 & info [ "points-per-decade" ] ~docv:"N"
         ~doc:"Frequency grid density (positive).")

let jobs_opt =
  Arg.(value
       & opt positive_int (Domain.recommended_domain_count ())
       & info [ "jobs"; "j" ] ~docv:"N"
           ~doc:"Worker domains for the fault-simulation campaign \
                 (default: the recommended domain count for this machine).")

let fault_kind_opt =
  Arg.(value & opt (enum [ ("deviation", `Deviation); ("both", `Both); ("catastrophic", `Catastrophic) ])
         `Deviation
       & info [ "faults" ] ~docv:"KIND"
           ~doc:"Fault universe: deviation (+20%), both (±20%) or catastrophic.")

let backend_opt =
  Arg.(value
       & opt
           (enum
              [
                ("dense", Testability.Fastsim.Dense);
                ("sparse", Testability.Fastsim.Sparse);
                ("auto", Testability.Fastsim.Auto);
              ])
           Testability.Fastsim.Auto
       & info [ "backend" ] ~docv:"KIND"
           ~doc:"MNA factorization backend: dense (planar LU), sparse \
                 (Markowitz-ordered CSC LU) or auto (sparse once the system is \
                 large and sparse enough; default).")

let no_prune_flag =
  Arg.(value & flag
       & info [ "no-prune" ]
           ~doc:"Simulate every test configuration even when several assemble \
                 to value-identical MNA systems; by default one representative \
                 per equivalence class is solved and its verdict rows are \
                 replicated.")

let no_certify_flag =
  Arg.(value & flag
       & info [ "no-certify" ]
           ~doc:"Skip the interval-certification pre-pass: simulate every \
                 (configuration, fault, frequency) point numerically, even \
                 where the static analysis proves its verdict. Only \
                 meaningful under a fixed:EPS criterion — the matrices are \
                 identical either way.")

let adaptive_opt =
  Arg.(value
       & vflag true
           [
             ( true,
               info [ "adaptive" ]
                 ~doc:"Coverage-directed coarse-to-fine campaign (the \
                       default): each (configuration, fault) row starts on a \
                       coarse subgrid and bisects only where verdicts flip or \
                       margins run thin; the matrices are bitwise identical \
                       to the exhaustive sweep." );
             ( false,
               info [ "no-adaptive" ]
                 ~doc:"Solve every grid point of every (configuration, \
                       fault) row exhaustively." );
           ])

let solve_budget_opt =
  Arg.(value & opt (some int) None
       & info [ "solve-budget" ] ~docv:"N"
           ~doc:"Per-row cap on the numeric solves the adaptive refinement \
                 may issue; a row that would exceed it degrades to the \
                 exhaustive sweep for that row — a verdict is never guessed. \
                 Must be positive; ignored with $(b,--no-adaptive).")

let check_solve_budget = function
  | Some n when n <= 0 ->
      die 2 "--solve-budget must be a positive integer (got %d)" n
  | budget -> budget

let adaptive_summary =
  Option.iter (fun (s : Mcdft_core.Adaptive.stats) ->
      let ratio =
        float_of_int s.Mcdft_core.Adaptive.points
        /. float_of_int (max 1 s.Mcdft_core.Adaptive.solved)
      in
      Printf.printf
        "adaptive refinement: solved %d of %d points (%.1fx fewer solves, %d \
         skipped, %d bisections%s)\n"
        s.Mcdft_core.Adaptive.solved s.Mcdft_core.Adaptive.points ratio
        s.Mcdft_core.Adaptive.skipped s.Mcdft_core.Adaptive.bisections
        (if s.Mcdft_core.Adaptive.budget_exhausted > 0 then
           Printf.sprintf ", %d rows degraded" s.Mcdft_core.Adaptive.budget_exhausted
         else ""))

(* The coverage estimator needs a scalar magnitude threshold and a
   component spread; phase-only criteria expose neither. An envelope
   criterion contributes its floor — the tightest threshold it ever
   applies — so the estimate is a conservative lower bound there. *)
let rec coverage_params = function
  | Testability.Detect.Fixed_tolerance e ->
      (* fixed:EPS says nothing about component spread; assume the
         default envelope's ±4% *)
      Some (0.04, e)
  | Testability.Detect.Process_envelope { component_tol; floor } ->
      if floor > 0.0 then Some (component_tol, floor) else None
  | Testability.Detect.Phase_fixed _ | Testability.Detect.Phase_envelope _ ->
      None
  | Testability.Detect.Any_of l -> List.find_map coverage_params l

let faults_of kind netlist =
  match kind with
  | `Deviation -> Fault.deviation_faults netlist
  | `Both -> Fault.both_deviations netlist
  | `Catastrophic -> Fault.catastrophic_faults netlist

(* ---- one error handler for every subcommand ---- *)

let handle_errors f =
  try f () with
  | Mna.Ac.Singular_circuit msg | Mna.Symbolic.Singular_circuit msg ->
      die 3
        "singular circuit: %s\n\
         (the MNA system has no unique solution — look for floating nodes, a \
         shorted source, or a wrong --source/--output pair)"
        msg
  | Fault.Unknown_element name ->
      die 4
        "unknown element %S: no element with that name in the analyzed netlist\n\
         (catastrophic fault lists only cover passive components; check the \
         fault universe against the circuit)"
        name
  | Cover.Solver.Infeasible_cover tags ->
      die 1
        "infeasible covering problem: clause%s %s cannot be satisfied\n\
         (a fault demands more detecting configurations than exist; lower \
         --n-detect or drop the fault)"
        (if List.length tags = 1 then "" else "s")
        (String.concat ", " (List.map string_of_int tags))
  | Not_found ->
      die 4
        "a fault names an element absent from the analyzed netlist\n\
         (catastrophic fault lists only cover passive components; check the \
         fault universe against the circuit)"
  | Invalid_argument msg -> die 1 "invalid input: %s" msg
  | Sys_error msg -> die 5 "i/o error: %s" msg

let with_circuit name source output f =
  handle_errors (fun () ->
      match load_circuit name ~source ~output with
      | Error msg -> die 1 "%s" msg
      | Ok b -> f b)

(* ---- observability flags ---- *)

let metrics_opt =
  Arg.(value & opt (some string) None
       & info [ "metrics" ] ~docv:"FILE"
           ~doc:"Write campaign metrics (solver counters, phase-timing \
                 histograms, scheduler utilization) to $(docv) as JSON.")

let trace_opt =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome-trace-format span timeline to $(docv); load it \
                 in chrome://tracing or https://ui.perfetto.dev.")

(* ---- per-domain GC tuning for campaign subcommands ----

   A campaign is a short-lived, allocation-aware batch job: the solver
   hot path is allocation-free, but assembly, classification and
   reporting still allocate, and with the stock 256 KiB minor heap
   every worker domain triggers frequent minor collections — each of
   which is a stop-the-world sync across *all* domains. A larger
   minor heap (4 MiB words here) makes those syncs rare, and a higher
   space_overhead trades heap size for fewer major slices; both are
   the right trade for a process that exits when the campaign ends.
   Must run before the first Domain.spawn: a domain sizes its minor
   heap when it starts. *)
let gc_default_opt =
  Arg.(value & flag
       & info [ "gc-default" ]
           ~doc:"Keep the OCaml runtime's default GC parameters instead of the \
                 campaign tuning (larger per-domain minor heap, higher space \
                 overhead).")

let tune_gc ~gc_default =
  if not gc_default then
    Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 22; space_overhead = 200 }

(* Enable the requested sinks, run, then write the files — also on the
   error path, so a failing campaign still leaves its partial trace. *)
let with_observability ~metrics ~trace f =
  if metrics <> None then Obs.Metrics.set_enabled true;
  if trace <> None then Obs.Trace.set_enabled true;
  let write_files () =
    Option.iter
      (fun path ->
        let json = Mcdft_core.Export.metrics_to_json (Obs.Metrics.snapshot ()) in
        let oc = open_out path in
        output_string oc (Report.Json.to_string ~indent:2 json);
        output_char oc '\n';
        close_out oc)
      metrics;
    Option.iter Obs.Trace.write trace
  in
  match f () with
  | v ->
      write_files ();
      v
  | exception e ->
      (* best effort: a failing campaign still leaves its partial
         trace, but the original error wins over a sink write error *)
      (try write_files () with _ -> ());
      raise e

(* ---- subcommands ---- *)

let list_cmd =
  let run () =
    handle_errors @@ fun () ->
    let rows =
      List.map
        (fun (b : Circuits.Benchmark.t) ->
          [
            b.Circuits.Benchmark.name;
            string_of_int (Circuits.Benchmark.opamp_count b);
            string_of_int (Circuits.Benchmark.passive_count b);
            Printf.sprintf "%g" b.Circuits.Benchmark.center_hz;
            b.Circuits.Benchmark.description;
          ])
        (Circuits.Registry.all ())
    in
    print_endline
      (Report.Table.render ~header:[ "name"; "opamps"; "passives"; "f0 (Hz)"; "description" ] rows)
  in
  Cmd.v (Cmd.info "list" ~doc:"List the built-in benchmark circuits")
    Term.(const run $ const ())

let show_cmd =
  let run name source output =
    with_circuit name source output (fun b ->
        print_string (Spice.Writer.to_string b.Circuits.Benchmark.netlist))
  in
  Cmd.v (Cmd.info "show" ~doc:"Print the circuit netlist in SPICE form")
    Term.(const run $ circuit_arg $ source_opt $ output_opt)

let lint_cmd =
  let json_of_finding (f : Analysis.Finding.t) =
    let opt key v = Option.to_list (Option.map (fun x -> (key, Report.Json.String x)) v) in
    Report.Json.Object
      ([
         ("code", Report.Json.String f.Analysis.Finding.code);
         ( "severity",
           Report.Json.String
             (Analysis.Finding.severity_to_string f.Analysis.Finding.severity) );
         ("message", Report.Json.String f.Analysis.Finding.message);
       ]
      @ opt "element" f.Analysis.Finding.element
      @ opt "node" f.Analysis.Finding.node
      @ opt "config" f.Analysis.Finding.config
      @
      match f.Analysis.Finding.loc with
      | None -> []
      | Some { Analysis.Finding.file; line } ->
          [ ("file", Report.Json.String file); ("line", Report.Json.int line) ])
  in
  (* SARIF 2.1.0 export — the static-analysis interchange format GitHub
     code scanning and most editors ingest. One run, one rule per
     distinct finding code, one result per finding; findings without a
     source location (benchmark lints) carry only the message. *)
  let sarif_of_findings ~circuit findings =
    let open Report.Json in
    let level = function
      | Analysis.Finding.Error -> "error"
      | Analysis.Finding.Warning -> "warning"
      | Analysis.Finding.Info -> "note"
    in
    let rules =
      List.sort_uniq compare
        (List.map (fun f -> f.Analysis.Finding.code) findings)
    in
    let result_of (f : Analysis.Finding.t) =
      let anchors =
        List.filter_map Fun.id
          [
            Option.map (fun e -> "element " ^ e) f.Analysis.Finding.element;
            Option.map (fun n -> "node " ^ n) f.Analysis.Finding.node;
            f.Analysis.Finding.config;
          ]
      in
      let text =
        match anchors with
        | [] -> f.Analysis.Finding.message
        | l -> f.Analysis.Finding.message ^ " (" ^ String.concat ", " l ^ ")"
      in
      Object
        ([
           ("ruleId", String f.Analysis.Finding.code);
           ("level", String (level f.Analysis.Finding.severity));
           ("message", Object [ ("text", String text) ]);
         ]
        @
        match f.Analysis.Finding.loc with
        | None -> []
        | Some { Analysis.Finding.file; line } ->
            [
              ( "locations",
                List
                  [
                    Object
                      [
                        ( "physicalLocation",
                          Object
                            [
                              ( "artifactLocation",
                                Object [ ("uri", String file) ] );
                              ( "region",
                                Object [ ("startLine", Report.Json.int line) ]
                              );
                            ] );
                      ];
                  ] );
            ])
    in
    Object
      [
        ("$schema", String "https://json.schemastore.org/sarif-2.1.0.json");
        ("version", String "2.1.0");
        ( "runs",
          List
            [
              Object
                [
                  ( "tool",
                    Object
                      [
                        ( "driver",
                          Object
                            [
                              ("name", String "mcdft-lint");
                              ("version", String "1.0.0");
                              ( "informationUri",
                                String
                                  "https://github.com/mcdft/mcdft#finding-codes"
                              );
                              ( "rules",
                                List
                                  (List.map
                                     (fun code ->
                                       Object
                                         [
                                           ("id", String code);
                                           ("name", String code);
                                         ])
                                     rules) );
                            ] );
                      ] );
                  ( "properties",
                    Object [ ("circuit", String circuit) ] );
                  ("results", List (List.map result_of findings));
                ];
            ] );
      ]
  in
  let run name source output json sarif strict =
    handle_errors @@ fun () ->
    let netlist, src, source, output =
      match Circuits.Registry.find name with
      | Some b ->
          ( b.Circuits.Benchmark.netlist,
            None,
            Some (Option.value source ~default:b.Circuits.Benchmark.source),
            Some (Option.value output ~default:b.Circuits.Benchmark.output) )
      | None ->
          if not (Sys.file_exists name) then
            die 1 "%S is neither a benchmark (see `mcdft list`) nor a file" name
          else (
            match Spice.Parser.parse_file_with_lines name with
            | Error e -> die 1 "%s: %s" name (Spice.Parser.error_to_string e)
            | Ok (netlist, lines) ->
                ( netlist,
                  Some { Analysis.Lint.file = name; lines },
                  (match source with Some _ -> source | None -> default_source netlist),
                  match output with Some _ -> output | None -> default_output netlist ))
    in
    let findings = Analysis.Lint.run ?src ?source ?output netlist in
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc
          (Report.Json.to_string ~indent:2 (sarif_of_findings ~circuit:name findings));
        output_char oc '\n';
        close_out oc)
      sarif;
    if json then
      print_endline
        (Report.Json.to_string ~indent:2
           (Report.Json.Object
              [
                ("circuit", Report.Json.String name);
                ("findings", Report.Json.List (List.map json_of_finding findings));
                ("summary", Report.Json.String (Analysis.Finding.summary findings));
              ]))
    else begin
      List.iter
        (fun f -> print_endline (Analysis.Finding.to_string ~fallback:name f))
        findings;
      Printf.printf "%s%s\n" (if findings = [] then "" else "\n") (Analysis.Finding.summary findings)
    end;
    let errors = Analysis.Finding.errors findings in
    let warnings = Analysis.Finding.warnings findings in
    if errors <> [] || (strict && warnings <> []) then exit 6
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the findings as JSON.")
  in
  let sarif_opt =
    Arg.(value & opt (some string) None
         & info [ "sarif" ] ~docv:"FILE"
             ~doc:"Also write the findings to $(docv) as a SARIF 2.1.0 log \
                   (the static-analysis interchange format CI annotation \
                   tooling ingests).")
  in
  let strict_flag =
    Arg.(value & flag
         & info [ "strict" ] ~doc:"Exit with code 6 on warnings too, not only errors.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Static analysis: validation, structural MNA rank at DC/HF/generic \
             frequencies, configuration-space diagnostics (broken test-input \
             chains, singular or equivalent configurations, structurally \
             undetectable faults) and interval-certification summaries")
    Term.(const run $ circuit_arg $ source_opt $ output_opt $ json_flag $ sarif_opt
          $ strict_flag)

let tf_cmd =
  let run name source output =
    with_circuit name source output (fun b ->
        let h =
          Mna.Symbolic.transfer ~source:b.Circuits.Benchmark.source
            ~output:b.Circuits.Benchmark.output b.Circuits.Benchmark.netlist
        in
        let h = Linalg.Ratfunc.simplify h in
        Format.printf "H(s) = %a@." Linalg.Ratfunc.pp h;
        Format.printf "dc gain = %g@." (Linalg.Ratfunc.dc_gain h);
        Format.printf "group delay at f0 = %.4g s@."
          (Linalg.Ratfunc.group_delay h
             (2.0 *. Float.pi *. b.Circuits.Benchmark.center_hz));
        let print_roots label roots =
          Format.printf "%s:@." label;
          Array.iter
            (fun r ->
              Format.printf "  %.4g %+.4gi  (|.|/2pi = %.4g Hz)@." r.Complex.re
                r.Complex.im
                (Complex.norm r /. (2.0 *. Float.pi)))
            roots
        in
        print_roots "poles" (Linalg.Ratfunc.poles h);
        print_roots "zeros" (Linalg.Ratfunc.zeros h))
  in
  Cmd.v (Cmd.info "tf" ~doc:"Symbolic transfer function, poles and zeros")
    Term.(const run $ circuit_arg $ source_opt $ output_opt)

let certify_cmd =
  let run name source output criterion ppd fault_kind work_cap json metrics trace =
    with_observability ~metrics ~trace @@ fun () ->
    with_circuit name source output (fun b ->
        let eps =
          match criterion with
          | Testability.Detect.Fixed_tolerance e when e > 0.0 -> e
          | c ->
              die 1
                "certification needs a fixed:EPS criterion (got %s): interval \
                 arithmetic bounds |dT|/|T| against a constant threshold only"
                (criterion_str c)
        in
        let netlist = b.Circuits.Benchmark.netlist in
        let dft =
          Multiconfig.Transform.make ~source:b.Circuits.Benchmark.source
            ~output:b.Circuits.Benchmark.output netlist
        in
        let faults = faults_of fault_kind netlist in
        let grid =
          Testability.Grid.around ~points_per_decade:ppd
            ~center_hz:b.Circuits.Benchmark.center_hz ()
        in
        let specs =
          List.map
            (fun config ->
              {
                Analysis.Certify.label = Multiconfig.Configuration.label config;
                netlist = Multiconfig.Transform.emulate dft config;
                source = b.Circuits.Benchmark.source;
                output = b.Circuits.Benchmark.output;
              })
            (Multiconfig.Transform.test_configurations dft)
        in
        let c =
          Analysis.Certify.certify ?work_cap ~eps
            ~freqs_hz:(Testability.Grid.freqs_hz grid) specs faults
        in
        let s = c.Analysis.Certify.stats in
        let cell_proved (cell : Analysis.Certify.cell) =
          let p = ref 0 in
          Bytes.iter (fun ch -> if ch <> '?' then incr p) cell.Analysis.Certify.verdicts;
          !p
        in
        if json then begin
          let open Report.Json in
          let view_json (v : Analysis.Certify.view_result) =
            Object
              [
                ("label", String v.Analysis.Certify.spec.Analysis.Certify.label);
                ("validated", Bool v.Analysis.Certify.validated);
                ( "cells",
                  List
                    (Array.to_list
                       (Array.map
                          (fun (cell : Analysis.Certify.cell) ->
                            Object
                              [
                                ("fault", String cell.Analysis.Certify.fault.Fault.id);
                                ( "verdicts",
                                  String
                                    (Bytes.to_string cell.Analysis.Certify.verdicts) );
                                ("proved_points", Report.Json.int (cell_proved cell));
                              ])
                          v.Analysis.Certify.cells)) );
              ]
          in
          print_endline
            (to_string ~indent:2
               (Object
                  [
                    ("circuit", String b.Circuits.Benchmark.name);
                    ("eps", Number c.Analysis.Certify.eps);
                    ("margin", Number c.Analysis.Certify.margin);
                    ("n_points", Report.Json.int c.Analysis.Certify.n_points);
                    ( "views",
                      List
                        (Array.to_list
                           (Array.map view_json c.Analysis.Certify.views)) );
                    ( "stats",
                      Object
                        [
                          ("cells", Report.Json.int s.Analysis.Certify.cells);
                          ( "cells_proved",
                            Report.Json.int s.Analysis.Certify.cells_proved );
                          ("points", Report.Json.int s.Analysis.Certify.points);
                          ( "points_proved",
                            Report.Json.int s.Analysis.Certify.points_proved );
                          ( "skipped_views",
                            Report.Json.int s.Analysis.Certify.skipped_views );
                        ] );
                  ]))
        end
        else begin
          Printf.printf
            "circuit: %s   criterion: fixed:%g   faults: %d   grid: %d points\n\n"
            b.Circuits.Benchmark.name eps (List.length faults)
            c.Analysis.Certify.n_points;
          let rows =
            Array.to_list
              (Array.map
                 (fun (v : Analysis.Certify.view_result) ->
                   let n_cells = Array.length v.Analysis.Certify.cells in
                   let whole =
                     Array.fold_left
                       (fun acc cell ->
                         if
                           c.Analysis.Certify.n_points > 0
                           && cell_proved cell = c.Analysis.Certify.n_points
                         then acc + 1
                         else acc)
                       0 v.Analysis.Certify.cells
                   in
                   let pts =
                     Array.fold_left
                       (fun acc cell -> acc + cell_proved cell)
                       0 v.Analysis.Certify.cells
                   in
                   let total = n_cells * c.Analysis.Certify.n_points in
                   [
                     v.Analysis.Certify.spec.Analysis.Certify.label;
                     (if v.Analysis.Certify.validated then "certified" else "skipped");
                     Printf.sprintf "%d/%d" whole n_cells;
                     Printf.sprintf "%d/%d" pts total;
                     (if total = 0 then "-"
                      else
                        Printf.sprintf "%.1f%%"
                          (100.0 *. float_of_int pts /. float_of_int total));
                   ])
                 c.Analysis.Certify.views)
          in
          print_endline
            (Report.Table.render
               ~header:[ "config"; "status"; "cells whole"; "points proved"; "fraction" ]
               rows);
          Printf.printf
            "\nproved %d of %d point verdicts (%s); %d of %d cells whole; %d view%s \
             skipped\n"
            s.Analysis.Certify.points_proved s.Analysis.Certify.points
            (if s.Analysis.Certify.points = 0 then "-"
             else
               Printf.sprintf "%.1f%%"
                 (100.0
                 *. float_of_int s.Analysis.Certify.points_proved
                 /. float_of_int s.Analysis.Certify.points))
            s.Analysis.Certify.cells_proved s.Analysis.Certify.cells
            s.Analysis.Certify.skipped_views
            (if s.Analysis.Certify.skipped_views = 1 then "" else "s");
          Printf.printf
            "a campaign under this criterion skips %d numeric solves\n"
            s.Analysis.Certify.points_proved
        end)
  in
  let criterion_fixed_opt =
    Arg.(value & opt criterion_conv (Testability.Detect.Fixed_tolerance 0.10)
         & info [ "criterion" ] ~docv:"CRIT"
             ~doc:"Detectability criterion; must be fixed:EPS (default \
                   fixed:0.1, the paper's Definition 1).")
  in
  let work_cap_opt =
    Arg.(value & opt (some positive_int) None
         & info [ "work-cap" ] ~docv:"N"
             ~doc:"Cap on symbolic transfer-function extractions (default \
                   256); views past the cap stay unknown, bounding the cost \
                   on circuits with hundreds of configurations.")
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the verdict cube as JSON.")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:"Interval-certified detectability: prove (configuration, fault, \
             frequency) verdicts statically with outward-rounded interval \
             arithmetic over the symbolic transfer function, without running \
             the numeric campaign")
    Term.(const run $ circuit_arg $ source_opt $ output_opt $ criterion_fixed_opt
          $ ppd_opt $ fault_kind_opt $ work_cap_opt $ json_flag $ metrics_opt
          $ trace_opt)

let analyze_cmd =
  let run name source output criterion ppd fault_kind fault_element backend =
    with_circuit name source output (fun b ->
        let faults =
          match fault_element with
          | Some element -> [ Fault.deviation ~element 1.2 ]
          | None -> faults_of fault_kind b.Circuits.Benchmark.netlist
        in
        let grid =
          Testability.Grid.around ~points_per_decade:ppd
            ~center_hz:b.Circuits.Benchmark.center_hz ()
        in
        let probe =
          {
            Testability.Detect.source = b.Circuits.Benchmark.source;
            output = b.Circuits.Benchmark.output;
          }
        in
        let results =
          Testability.Detect.analyze ~backend ~criterion probe grid
            b.Circuits.Benchmark.netlist faults
        in
        Printf.printf "circuit: %s   criterion: %s\n" b.Circuits.Benchmark.name
          (criterion_str criterion);
        Printf.printf "fault coverage: %.1f%%   <w-det>: %.1f%%\n\n"
          (100.0 *. Testability.Detect.fault_coverage results)
          (100.0 *. Testability.Detect.average_omega_det results);
        let labels =
          Array.of_list (List.map (fun r -> r.Testability.Detect.fault.Fault.id) results)
        in
        let values =
          Array.of_list
            (List.map (fun r -> 100.0 *. r.Testability.Detect.omega_det) results)
        in
        print_string
          (Report.Chart.bars ~width:40 ~labels ~series:[ ("w-det %", values) ] ()))
  in
  let fault_element_opt =
    Arg.(value & opt (some string) None
         & info [ "fault-element" ] ~docv:"NAME"
             ~doc:"Restrict the analysis to the +20% deviation fault on the \
                   named element; exits with code 4 when the element is \
                   absent from the netlist.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Testability of the functional configuration (paper Sec. 2)")
    Term.(const run $ circuit_arg $ source_opt $ output_opt $ criterion_opt $ ppd_opt
          $ fault_kind_opt $ fault_element_opt $ backend_opt)

let matrix_cmd =
  let run name source output criterion ppd fault_kind jobs gc_default prefilter backend
      no_prune no_certify adaptive solve_budget metrics trace =
    let solve_budget = check_solve_budget solve_budget in
    with_observability ~metrics ~trace @@ fun () ->
    with_circuit name source output (fun b ->
        tune_gc ~gc_default;
        let faults = faults_of fault_kind b.Circuits.Benchmark.netlist in
        let certify = not no_certify in
        let m, plan, pruning, certification, refinement =
          if prefilter then
            let plan, m =
              PF.run ~criterion ~points_per_decade:ppd ~faults ~certify ~adaptive
                ?solve_budget b
            in
            (m, Some plan, None, None, None)
          else
            let t =
              P.run ~criterion ~points_per_decade:ppd ~faults ~jobs ~backend
                ~prune:(not no_prune) ~certify ~adaptive ?solve_budget b
            in
            ( t.P.matrix,
              None,
              Some (t.P.equivalence_groups, t.P.pruned_configs),
              t.P.certify,
              t.P.adaptive )
        in
        let fault_ids = Array.map (fun f -> f.Fault.id) m.Testability.Matrix.faults in
        let header = "" :: Array.to_list fault_ids in
        Printf.printf "fault detectability matrix (%s):\n" (criterion_str criterion);
        print_endline
          (Report.Table.render ~header
             (Array.to_list
                (Array.mapi
                   (fun i row ->
                     m.Testability.Matrix.views.(i).Testability.Matrix.label
                     :: Array.to_list
                          (Array.map (fun d -> if d then "1" else "0") row))
                   m.Testability.Matrix.detect)));
        Printf.printf "\nw-detectability (%%):\n";
        print_endline
          (Report.Table.render ~header
             (Array.to_list
                (Array.mapi
                   (fun i row ->
                     m.Testability.Matrix.views.(i).Testability.Matrix.label
                     :: Array.to_list
                          (Array.map (fun w -> Printf.sprintf "%.1f" (100.0 *. w)) row))
                   m.Testability.Matrix.omega)));
        Printf.printf "\nmax fault coverage: %.1f%%\n"
          (100.0 *. Testability.Matrix.max_fault_coverage m);
        Option.iter
          (fun (groups, pruned) ->
            Printf.printf
              "campaign pruning: %d equivalence group%s, %d configuration row%s \
               replicated\n"
              groups
              (if groups = 1 then "" else "s")
              pruned
              (if pruned = 1 then "" else "s"))
          pruning;
        Option.iter
          (fun (plan : PF.t) ->
            Printf.printf
              "structural prefilter: skipped %d of %d (configuration, fault) sweeps\n"
              plan.PF.pruned_pairs plan.PF.total_pairs)
          plan;
        Option.iter
          (fun (c : Analysis.Certify.t) ->
            let s = c.Analysis.Certify.stats in
            Printf.printf
              "interval certification: proved %d of %d point verdicts statically \
               (%d of %d cells whole)\n"
              s.Analysis.Certify.points_proved s.Analysis.Certify.points
              s.Analysis.Certify.cells_proved s.Analysis.Certify.cells)
          certification;
        adaptive_summary refinement)
  in
  let prefilter_flag =
    Arg.(value & flag
         & info [ "prefilter" ]
             ~doc:"Skip (configuration, fault) sweeps the structural detectability \
                   pre-pass proves undetectable; the matrix is unchanged.")
  in
  Cmd.v
    (Cmd.info "matrix" ~doc:"Fault detectability matrix over all test configurations")
    Term.(const run $ circuit_arg $ source_opt $ output_opt $ criterion_opt $ ppd_opt
          $ fault_kind_opt $ jobs_opt $ gc_default_opt $ prefilter_flag $ backend_opt
          $ no_prune_flag $ no_certify_flag $ adaptive_opt $ solve_budget_opt
          $ metrics_opt $ trace_opt)

let optimize_cmd =
  let run name source output criterion ppd fault_kind jobs gc_default n_detect backend
      no_prune no_certify adaptive solve_budget json metrics trace =
    let solve_budget = check_solve_budget solve_budget in
    with_observability ~metrics ~trace @@ fun () ->
    with_circuit name source output (fun b ->
        tune_gc ~gc_default;
        let faults = faults_of fault_kind b.Circuits.Benchmark.netlist in
        let t =
          P.run ~criterion ~points_per_decade:ppd ~faults ~jobs ~backend
            ~prune:(not no_prune) ~certify:(not no_certify) ~adaptive
            ?solve_budget b
        in
        let r = P.optimize ~n_detect t in
        if json then
          let snap =
            if metrics <> None then Some (Obs.Metrics.snapshot ()) else None
          in
          let coverage =
            Option.map
              (fun (component_tol, epsilon) ->
                let probe =
                  {
                    Testability.Detect.source = b.Circuits.Benchmark.source;
                    output = b.Circuits.Benchmark.output;
                  }
                in
                Testability.Montecarlo.coverage_run ~jobs ~component_tol
                  ~epsilon probe t.P.grid b.Circuits.Benchmark.netlist)
              (coverage_params criterion)
          in
          print_endline
            (Report.Json.to_string ~indent:2
               (Mcdft_core.Export.pipeline_to_json ?metrics:snap ?coverage t r))
        else
        let configs_to_string l =
          "{" ^ String.concat ", " (List.map (Printf.sprintf "C%d") l) ^ "}"
        in
        let opamps_to_string l =
          "{"
          ^ String.concat ", "
              (List.map (fun k -> Multiconfig.Transform.opamp_label t.P.dft k) l)
          ^ "}"
        in
        Printf.printf "circuit: %s   criterion: %s   faults: %d\n"
          b.Circuits.Benchmark.name (criterion_str criterion) (List.length faults);
        if t.P.pruned_configs > 0 then
          Printf.printf
            "campaign pruning: %d equivalence groups, %d configuration rows \
             replicated\n"
            t.P.equivalence_groups t.P.pruned_configs;
        Printf.printf "\nfundamental requirement:\n";
        Printf.printf "  functional coverage : %.1f%%\n" (100.0 *. r.O.functional_coverage);
        Printf.printf "  maximum coverage    : %.1f%%\n" (100.0 *. r.O.max_coverage);
        if r.O.uncoverable <> [] then
          Printf.printf "  uncoverable faults  : %s\n"
            (String.concat ", "
               (List.map
                  (fun j -> (List.nth faults j).Fault.id)
                  r.O.uncoverable));
        if n_detect > 1 then begin
          Printf.printf "  n-detect target     : %d detections per fault\n" n_detect;
          if r.O.short_faults <> [] then
            Printf.printf "  short faults        : %s\n"
              (String.concat ", "
                 (List.map
                    (fun (j, avail) ->
                      Printf.sprintf "%s (only %d config%s)" (List.nth faults j).Fault.id
                        avail
                        (if avail = 1 then "" else "s"))
                    r.O.short_faults))
        end;
        Printf.printf "  essential configs   : %s\n" (configs_to_string r.O.essential);
        (match r.O.xi_terms_raw with
        | Some terms when List.length terms <= 12 ->
            Printf.printf "  xi (SOP)            : %s\n"
              (String.concat " + "
                 (List.map
                    (fun s ->
                      String.concat "." (List.map (Printf.sprintf "C%d") (IntSet.elements s)))
                    terms))
        | _ -> ());
        Printf.printf "\nobjective A - minimal test configurations:\n";
        Printf.printf "  chosen set          : %s\n" (configs_to_string r.O.choice_a.O.configs);
        Printf.printf "  <w-det>             : %.1f%%\n" r.O.choice_a.O.avg_omega;
        if n_detect > 1 then
          Printf.printf "  detections/fault    : worst %d, average %.2f\n"
            r.O.detection_a.O.worst r.O.detection_a.O.average;
        Printf.printf "\nobjective B - minimal configurable opamps (partial DFT):\n";
        Printf.printf "  configurable opamps : %s\n"
          (opamps_to_string r.O.choice_b.O.opamps);
        Printf.printf "  reachable configs   : %s\n"
          (configs_to_string r.O.choice_b.O.reachable_configs);
        Printf.printf "  <w-det>             : %.1f%%\n" r.O.choice_b.O.avg_omega_reachable;
        if n_detect > 1 then
          Printf.printf "  detections/fault    : worst %d, average %.2f\n"
            r.O.detection_b.O.worst r.O.detection_b.O.average;
        Printf.printf "\nreference <w-det>: functional %.1f%%, brute-force DFT %.1f%%\n"
          r.O.functional_avg_omega r.O.brute_force_avg_omega)
  in
  let json_flag =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let n_detect_opt =
    Arg.(
      value
      & opt positive_int 1
      & info [ "n-detect" ] ~docv:"N"
          ~doc:
            "Require each fault to be detected by at least $(docv) chosen \
             configurations (n-detection covering). Faults detectable by fewer than \
             $(docv) configurations are covered as far as possible and reported as \
             short.")
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Ordered-requirements optimization of the multi-configuration DFT (Sec. 4)")
    Term.(const run $ circuit_arg $ source_opt $ output_opt $ criterion_opt $ ppd_opt
          $ fault_kind_opt $ jobs_opt $ gc_default_opt $ n_detect_opt $ backend_opt
          $ no_prune_flag $ no_certify_flag $ adaptive_opt $ solve_budget_opt
          $ json_flag $ metrics_opt $ trace_opt)

let testplan_cmd =
  let run name source output criterion ppd fault_kind jobs gc_default backend no_prune
      no_certify adaptive solve_budget metrics trace =
    let solve_budget = check_solve_budget solve_budget in
    with_observability ~metrics ~trace @@ fun () ->
    with_circuit name source output (fun b ->
        tune_gc ~gc_default;
        let faults = faults_of fault_kind b.Circuits.Benchmark.netlist in
        let t =
          P.run ~criterion ~points_per_decade:ppd ~faults ~jobs ~backend
            ~prune:(not no_prune) ~certify:(not no_certify) ~adaptive
            ?solve_budget b
        in
        let plan = Mcdft_core.Test_plan.build t in
        print_string (Mcdft_core.Test_plan.to_string plan))
  in
  Cmd.v
    (Cmd.info "testplan"
       ~doc:"Minimal (configuration, frequency) measurement schedule")
    Term.(const run $ circuit_arg $ source_opt $ output_opt $ criterion_opt $ ppd_opt
          $ fault_kind_opt $ jobs_opt $ gc_default_opt $ backend_opt $ no_prune_flag
          $ no_certify_flag $ adaptive_opt $ solve_budget_opt $ metrics_opt
          $ trace_opt)

let sweep_cmd =
  let run name source output ppd csv =
    with_circuit name source output (fun b ->
        let grid =
          Testability.Grid.around ~points_per_decade:ppd
            ~center_hz:b.Circuits.Benchmark.center_hz ()
        in
        let freqs = Testability.Grid.freqs_hz grid in
        let response =
          Mna.Ac.sweep ~source:b.Circuits.Benchmark.source
            ~output:b.Circuits.Benchmark.output b.Circuits.Benchmark.netlist
            ~freqs_hz:freqs
        in
        if csv then begin
          print_endline "freq_hz,magnitude,magnitude_db,phase_rad";
          Array.iteri
            (fun i f ->
              let h = response.(i) in
              Printf.printf "%g,%g,%g,%g\n" f (Complex.norm h) (Mna.Ac.magnitude_db h)
                (Complex.arg h))
            freqs
        end
        else begin
          let mags = Array.map Mna.Ac.magnitude_db response in
          Printf.printf "|H| in dB, %g Hz .. %g Hz (log):\n%s\n"
            (Testability.Grid.f_lo grid) (Testability.Grid.f_hi grid)
            (Report.Chart.sparkline mags);
          let peak = Array.fold_left Float.max neg_infinity mags in
          Printf.printf "peak %.1f dB; dc %.1f dB; top %.1f dB\n" peak mags.(0)
            mags.(Array.length mags - 1)
        end)
  in
  let csv_flag =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a sparkline summary.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Frequency response of the functional circuit")
    Term.(const run $ circuit_arg $ source_opt $ output_opt $ ppd_opt $ csv_flag)

let diagnose_cmd =
  let module T = Diagnosis.Trajectory in
  let read_magnitudes file =
    let ic =
      try open_in file
      with Sys_error msg -> die 5 "cannot read observation file: %s" msg
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let values = ref [] in
    (try
       while true do
         let line = input_line ic in
         let line =
           match String.index_opt line '#' with
           | Some i -> String.sub line 0 i
           | None -> line
         in
         String.split_on_char ' ' line
         |> List.concat_map (String.split_on_char ',')
         |> List.iter (fun tok ->
                let tok = String.trim tok in
                if tok <> "" then
                  match float_of_string_opt tok with
                  | Some v -> values := v :: !values
                  | None -> die 1 "observation file %s: %S is not a number" file tok)
       done
     with End_of_file -> ());
    Array.of_list (List.rev !values)
  in
  let print_verdict (v : T.verdict) =
    Printf.printf "  located fault : %s\n" v.T.fault.Fault.id;
    Printf.printf "  rms distance  : %.4g\n" v.T.distance;
    Printf.printf "  confidence    : %.2f%s\n" v.T.confidence
      (if v.T.margin = infinity then " (only candidate)"
       else Printf.sprintf " (margin to runner-up %.4g)" v.T.margin);
    (if List.length v.T.ambiguous > 1 then
       Printf.printf "  ambiguity set : %s\n"
         (String.concat ", " (List.map (fun f -> f.Fault.id) v.T.ambiguous)));
    let show = min 3 (List.length v.T.ranking) in
    Printf.printf "  nearest %d     : %s\n" show
      (String.concat "  "
         (List.filteri (fun i _ -> i < show) v.T.ranking
         |> List.map (fun (f, d) -> Printf.sprintf "%s=%.3g" f.Fault.id d)))
  in
  let run name source output criterion ppd fault_kind jobs gc_default backend no_certify
      tolerance configs simulate simulate_all observe metrics trace =
    with_observability ~metrics ~trace @@ fun () ->
    with_circuit name source output (fun b ->
        tune_gc ~gc_default;
        let faults = faults_of fault_kind b.Circuits.Benchmark.netlist in
        let t =
          P.run ~criterion ~points_per_decade:ppd ~faults ~jobs ~backend
            ~certify:(not no_certify) b
        in
        let traj = T.of_pipeline ?tolerance ?configs t in
        Printf.printf "circuit: %s   measurements: %d points (%d faults)\n"
          b.Circuits.Benchmark.name (T.n_measurements traj) (List.length faults);
        let fault_of_arg s =
          match List.find_opt (fun f -> f.Fault.id = s) faults with
          | Some f -> f
          | None -> (
              match List.find_opt (fun f -> f.Fault.element = s) faults with
              | Some f -> f
              | None -> Fault.deviation ~element:s 1.2)
        in
        match (simulate, simulate_all, observe) with
        | Some _, true, _ | Some _, _, Some _ | _, true, Some _ ->
            die 1 "--simulate, --simulate-all and --observe are mutually exclusive"
        | Some fid, false, None ->
            let f = fault_of_arg fid in
            let v = T.classify ?tolerance traj (T.simulate traj f) in
            Printf.printf "\nsimulated fault %s:\n" f.Fault.id;
            print_verdict v;
            let hit =
              v.T.fault.Fault.id = f.Fault.id
              || List.exists (fun g -> g.Fault.id = f.Fault.id) v.T.ambiguous
            in
            if not hit then
              die 1 "self-test failed: %s was classified as %s (not in ambiguity set)"
                f.Fault.id v.T.fault.Fault.id
        | None, true, None ->
            let exact = ref 0 and via_set = ref 0 and missed = ref [] in
            List.iter
              (fun f ->
                let v = T.classify ?tolerance traj (T.simulate traj f) in
                if v.T.fault.Fault.id = f.Fault.id then incr exact
                else if List.exists (fun g -> g.Fault.id = f.Fault.id) v.T.ambiguous
                then begin
                  incr via_set;
                  Printf.printf "  %-12s -> ambiguity set {%s}\n" f.Fault.id
                    (String.concat ", " (List.map (fun g -> g.Fault.id) v.T.ambiguous))
                end
                else begin
                  missed := f.Fault.id :: !missed;
                  Printf.printf "  %-12s -> MISS (classified %s, distance %.3g)\n"
                    f.Fault.id v.T.fault.Fault.id v.T.distance
                end)
              faults;
            Printf.printf
              "\nself-test: %d/%d located exactly, %d via ambiguity set, %d missed\n"
              !exact (List.length faults) !via_set (List.length !missed);
            if !missed <> [] then
              die 1 "diagnosis self-test missed: %s"
                (String.concat ", " (List.rev !missed))
        | None, false, Some file ->
            let mags = read_magnitudes file in
            let obs =
              try T.deviations_of_magnitudes traj mags
              with Invalid_argument _ ->
                die 1 "observation file %s has %d values; this measurement set needs %d"
                  file (Array.length mags) (T.n_measurements traj)
            in
            let v = T.classify ?tolerance traj obs in
            Printf.printf "\nobserved response (%s):\n" file;
            print_verdict v
        | None, false, None ->
            let sets = T.ambiguity_sets ?tolerance traj in
            Printf.printf "trajectory resolution: %.1f%%   (dictionary: %.1f%%)\n\n"
              (100.0 *. T.resolution ?tolerance traj)
              (100.0 *. Diagnosis.Dictionary.resolution (Diagnosis.Dictionary.build t));
            Printf.printf "ambiguity sets:\n";
            List.iteri
              (fun i group ->
                Printf.printf "  %d. %s\n" (i + 1)
                  (String.concat ", " (List.map (fun f -> f.Fault.id) group)))
              sets)
  in
  let tolerance_opt =
    Arg.(
      value
      & opt (some float) None
      & info [ "tolerance" ] ~docv:"RMS"
          ~doc:
            "RMS deviation envelope within which two fault trajectories are \
             considered indistinguishable (default 0.02).")
  in
  let configs_opt =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "configs" ] ~docv:"I,J,.."
          ~doc:
            "Restrict the measurement set to these configuration indices (e.g. an \
             optimized cover); default: all test configurations.")
  in
  let simulate_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "simulate" ] ~docv:"FAULT"
          ~doc:
            "Self-test: simulate this fault (by id such as R1+20%, or element name \
             for a +20% deviation) and classify its response.")
  in
  let simulate_all_flag =
    Arg.(
      value & flag
      & info [ "simulate-all" ]
          ~doc:
            "Self-test every fault in the universe; exits non-zero if any fault is \
             classified outside its ambiguity set.")
  in
  let observe_opt =
    Arg.(
      value
      & opt (some string) None
      & info [ "observe" ] ~docv:"FILE"
          ~doc:
            "Classify measured response magnitudes |H| read from FILE \
             (whitespace/comma separated, configuration-major then frequency, one \
             value per measurement point; # comments to end of line).")
  in
  Cmd.v
    (Cmd.info "diagnose"
       ~doc:
         "Fault location by nearest response trajectory: ambiguity sets, \
          self-tests, and classification of observed responses")
    Term.(const run $ circuit_arg $ source_opt $ output_opt $ criterion_opt $ ppd_opt
          $ fault_kind_opt $ jobs_opt $ gc_default_opt $ backend_opt $ no_certify_flag
          $ tolerance_opt $ configs_opt $ simulate_opt $ simulate_all_flag $ observe_opt
          $ metrics_opt $ trace_opt)

let blocks_cmd =
  let run name source output criterion ppd jobs gc_default backend no_certify metrics
      trace =
    with_observability ~metrics ~trace @@ fun () ->
    with_circuit name source output (fun b ->
        tune_gc ~gc_default;
        let t =
          P.run ~criterion ~points_per_decade:ppd ~jobs ~backend
            ~certify:(not no_certify) b
        in
        let rows =
          List.map
            (fun (r : Mcdft_core.Block_access.report) ->
              [
                Multiconfig.Transform.opamp_label t.P.dft
                  r.Mcdft_core.Block_access.but;
                Multiconfig.Configuration.label r.Mcdft_core.Block_access.access;
                string_of_int (List.length r.Mcdft_core.Block_access.faults_in_scope);
                Printf.sprintf "%.1f"
                  (100.0 *. r.Mcdft_core.Block_access.coverage_functional);
                Printf.sprintf "%.1f"
                  (100.0 *. r.Mcdft_core.Block_access.coverage_access);
              ])
            (Mcdft_core.Block_access.per_opamp t)
        in
        print_endline
          (Report.Table.render
             ~header:[ "block"; "access"; "in scope"; "in-situ FC %"; "access FC %" ]
             rows))
  in
  Cmd.v
    (Cmd.info "blocks"
       ~doc:"Embedded-block access: per-opamp coverage via the transparency mechanism")
    Term.(const run $ circuit_arg $ source_opt $ output_opt $ criterion_opt $ ppd_opt
          $ jobs_opt $ gc_default_opt $ backend_opt $ no_certify_flag $ metrics_opt
          $ trace_opt)

let fuzz_cmd =
  (* "45", "45s" or "3m" *)
  let budget_conv =
    Arg.conv
      ( (fun s ->
          let num part = float_of_string_opt part in
          let parse =
            match String.length s with
            | 0 -> None
            | n -> (
                match s.[n - 1] with
                | 's' -> num (String.sub s 0 (n - 1))
                | 'm' ->
                    Option.map (fun v -> v *. 60.0) (num (String.sub s 0 (n - 1)))
                | _ -> num s)
          in
          match parse with
          | Some b when b > 0.0 -> Ok b
          | _ -> Error (`Msg "expected a positive duration, e.g. 60, 60s or 2m")),
        fun ppf b -> Format.fprintf ppf "%gs" b )
  in
  let seed_opt =
    Arg.(value & opt int 0
         & info [ "seed" ] ~docv:"N"
             ~doc:"Base seed of the campaign. Case $(i,i) is always generated \
                   from seed N+i of its family, so one seed pins the whole \
                   circuit sequence and every verdict.")
  in
  let budget_opt =
    Arg.(value & opt (some budget_conv) None
         & info [ "budget" ] ~docv:"DURATION"
             ~doc:"Stop after roughly $(docv) of wall clock (e.g. 60s, 2m). A \
                   budget only truncates the deterministic case sequence; it \
                   never changes a verdict.")
  in
  let cases_opt =
    Arg.(value & opt (some positive_int) None
         & info [ "cases" ] ~docv:"N"
             ~doc:"Run exactly $(docv) cases (default 50 when no --budget is \
                   given), for bit-identical reports across machines.")
  in
  let families_conv =
    Arg.conv
      ( (fun s ->
          let names = String.split_on_char ',' s in
          let parsed = List.map Conformance.Gen.family_of_string names in
          if List.mem None parsed then
            Error
              (`Msg
                (Printf.sprintf "unknown family in %S (known: %s)" s
                   (String.concat ", "
                      (List.map Conformance.Gen.family_name
                         Conformance.Gen.all_families))))
          else Ok (List.filter_map Fun.id parsed)),
        fun ppf fams ->
          Format.fprintf ppf "%s"
            (String.concat "," (List.map Conformance.Gen.family_name fams)) )
  in
  let families_opt =
    Arg.(value & opt families_conv Conformance.Gen.families
         & info [ "families" ] ~docv:"LIST"
             ~doc:"Comma-separated topology families to rotate over (default: \
                   the quick rotation; bigladder is opt-in).")
  in
  let oracles_conv =
    Arg.conv
      ( (fun s ->
          let names = String.split_on_char ',' s in
          let parsed = List.map Conformance.Oracle.find names in
          if List.mem None parsed then
            Error
              (`Msg
                (Printf.sprintf "unknown oracle in %S (known: %s)" s
                   (String.concat ", "
                      (List.map
                         (fun o -> o.Conformance.Oracle.name)
                         Conformance.Oracle.all))))
          else Ok (List.filter_map Fun.id parsed)),
        fun ppf os ->
          Format.fprintf ppf "%s"
            (String.concat ","
               (List.map (fun o -> o.Conformance.Oracle.name) os)) )
  in
  let oracles_opt =
    Arg.(value & opt oracles_conv Conformance.Oracle.all
         & info [ "oracles" ] ~docv:"LIST"
             ~doc:"Comma-separated differential oracles to run (default: all).")
  in
  let shrink_dir_opt =
    Arg.(value & opt string "fuzz-repros"
         & info [ "shrink-dir" ] ~docv:"DIR"
             ~doc:"Directory for shrunk failure repros (a SPICE netlist plus \
                   an expected-oracle JSON per failure).")
  in
  let snapshot_dir_opt =
    Arg.(value & opt string "test/fixtures/snapshots"
         & info [ "snapshot-dir" ] ~docv:"DIR"
             ~doc:"Directory holding the golden paper-table snapshots.")
  in
  let update_snapshots_flag =
    Arg.(value & flag
         & info [ "update-snapshots" ]
             ~doc:"Regenerate the golden snapshots under --snapshot-dir and \
                   exit (no fuzzing).")
  in
  let check_snapshots_flag =
    Arg.(value & flag
         & info [ "check-snapshots" ]
             ~doc:"Byte-compare the golden snapshots under --snapshot-dir and \
                   exit (no fuzzing); exit code 1 on drift.")
  in
  let replay_opt =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE"
             ~doc:"Replay one repro from its .expected.json file instead of \
                   fuzzing: exit 0 when the failure still reproduces, 1 when \
                   it no longer does.")
  in
  let list_oracles_flag =
    Arg.(value & flag
         & info [ "list-oracles" ] ~doc:"List the oracle registry and exit.")
  in
  let verbose_flag =
    Arg.(value & flag
         & info [ "verbose"; "v" ]
             ~doc:"Log every case and verdict to stderr as the campaign runs.")
  in
  let run seed budget cases families oracles shrink_dir snapshot_dir
      update_snapshots check_snapshots replay list_oracles verbose _jobs =
    handle_errors @@ fun () ->
    if list_oracles then begin
      List.iter
        (fun (o : Conformance.Oracle.t) ->
          Printf.printf "%-18s %s\n" o.Conformance.Oracle.name
            o.Conformance.Oracle.doc)
        Conformance.Oracle.all;
      exit 0
    end;
    if update_snapshots then begin
      List.iter print_endline (Conformance.Snapshot.update ~dir:snapshot_dir);
      exit 0
    end;
    if check_snapshots then begin
      match Conformance.Snapshot.check ~dir:snapshot_dir with
      | Ok () ->
          Printf.printf "snapshots under %s are up to date\n" snapshot_dir;
          exit 0
      | Error msg -> die 1 "snapshot drift:\n%s" msg
    end;
    match replay with
    | Some expected -> (
        match Conformance.Shrink.load ~expected with
        | Error msg -> die 1 "%s" msg
        | Ok repro -> (
            match Conformance.Shrink.replay repro with
            | Error msg -> die 1 "%s" msg
            | Ok verdict ->
                Printf.printf "%s on %s: %s\n" repro.Conformance.Shrink.oracle
                  repro.Conformance.Shrink.label
                  (Conformance.Oracle.verdict_to_string verdict);
                exit
                  (match verdict with Conformance.Oracle.Fail _ -> 0 | _ -> 1)))
    | None ->
        let max_cases =
          match (cases, budget) with
          | Some n, _ -> Some n
          | None, None -> Some 50
          | None, Some _ -> None
        in
        let config =
          {
            Conformance.Fuzz.seed;
            budget_s = budget;
            max_cases;
            families;
            oracles;
            shrink_dir = Some shrink_dir;
            log = (if verbose then fun s -> Printf.eprintf "%s\n%!" s else ignore);
          }
        in
        Printf.printf "mcdft fuzz: seed %d, %s, families %s, oracles %s\n%!" seed
          (match (max_cases, budget) with
          | Some n, None -> Printf.sprintf "%d cases" n
          | Some n, Some b -> Printf.sprintf "up to %d cases within %gs" n b
          | None, Some b -> Printf.sprintf "budget %gs" b
          | None, None -> "unbounded")
          (String.concat "," (List.map Conformance.Gen.family_name families))
          (String.concat ","
             (List.map (fun o -> o.Conformance.Oracle.name) oracles));
        let outcome = Conformance.Fuzz.run config in
        print_string (Conformance.Fuzz.summary outcome);
        Printf.printf "replay any failure with: mcdft fuzz --replay %s/<slug>.expected.json\n"
          shrink_dir;
        if outcome.Conformance.Fuzz.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential conformance fuzzing: random circuits checked by \
             redundant-implementation oracles (planar vs boxed solves, rank-1 \
             vs re-assembled faults, parallel vs sequential campaigns, \
             structural vs numeric rank, exhaustive vs branch-and-bound \
             covers), with failing cases shrunk to minimal repro fixtures. \
             Verdicts depend only on --seed and the case index — never on \
             --jobs or --budget.")
    Term.(const run $ seed_opt $ budget_opt $ cases_opt $ families_opt
          $ oracles_opt $ shrink_dir_opt $ snapshot_dir_opt
          $ update_snapshots_flag $ check_snapshots_flag $ replay_opt
          $ list_oracles_flag $ verbose_flag $ jobs_opt)

let () =
  let doc = "multi-configuration DFT analysis for analog circuits (DATE 1998 reproduction)" in
  let info = Cmd.info "mcdft" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; show_cmd; lint_cmd; tf_cmd; certify_cmd; analyze_cmd; matrix_cmd;
            optimize_cmd; testplan_cmd; sweep_cmd; diagnose_cmd; blocks_cmd; fuzz_cmd;
          ]))
