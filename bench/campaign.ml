(* End-to-end campaign timings: wall-clock seconds for Pipeline.run
   (transform + 2ⁿ−1 configuration emulations + fault simulation +
   detectability matrices) per benchmark and worker count. These are
   the numbers the engine optimizations exist for, so they are timed
   whole rather than via bechamel micro-runs.

   Each case is timed twice: once with the observability sinks
   disabled (the headline number — instrumentation must be free when
   off) and once with Obs.Metrics enabled, which also yields the
   solver-counter columns for BENCH_<date>.json. *)

module P = Mcdft_core.Pipeline

type row = {
  label : string;
  seconds : float;  (* metrics disabled — the headline number *)
  seconds_metrics_on : float;
  counters : (string * int) list;
}

let time_s f =
  let t0 = Unix.gettimeofday () in
  ignore (f ());
  Unix.gettimeofday () -. t0

(* The counters worth a column: solver-mix and scheduler activity. *)
let counter_columns =
  [
    "fastsim.smw_solves";
    "fastsim.full_solves";
    "fastsim.refine_steps";
    "fastsim.structural_faults";
    "fastsim.wcache_hits";
    "fastsim.wcache_misses";
    "mna.fills";
    "parallel.chunks";
  ]

(* [(label, seconds)] rows. Smoke mode keeps CI fast: the biquad only,
   a coarse grid, one worker. *)
let rows ~smoke () =
  let cases =
    if smoke then [ (Circuits.Tow_thomas.make (), 10, [ 1 ]) ]
    else
      [
        (Circuits.Tow_thomas.make (), 30, [ 1; 4 ]);
        (Circuits.Leapfrog.make (), 30, [ 1; 4 ]);
      ]
  in
  List.concat_map
    (fun (b, ppd, jobs_list) ->
      List.map
        (fun jobs ->
          let run () = P.run ~points_per_decade:ppd ~jobs b in
          (* start each case from a compacted heap so a timing does not
             inherit GC debt from whatever ran before it *)
          Gc.compact ();
          Obs.Metrics.set_enabled false;
          let seconds = time_s run in
          Gc.compact ();
          Obs.Metrics.reset ();
          Obs.Metrics.set_enabled true;
          let seconds_metrics_on = time_s run in
          Obs.Metrics.set_enabled false;
          let snap = Obs.Metrics.snapshot () in
          Obs.Metrics.reset ();
          {
            label =
              Printf.sprintf "campaign/%s ppd=%d jobs=%d"
                b.Circuits.Benchmark.name ppd jobs;
            seconds;
            seconds_metrics_on;
            counters =
              List.map (fun c -> (c, Obs.Metrics.counter snap c)) counter_columns;
          })
        jobs_list)
    cases

let print_rows rows =
  print_endline "\n==== CAMPAIGN: end-to-end Pipeline.run timings ====\n";
  let header =
    [ "campaign"; "time (s)"; "metrics on (s)"; "smw"; "full"; "chunks" ]
  in
  let printable =
    List.map
      (fun r ->
        let c name = string_of_int (List.assoc name r.counters) in
        [
          r.label;
          Printf.sprintf "%.3f" r.seconds;
          Printf.sprintf "%.3f" r.seconds_metrics_on;
          c "fastsim.smw_solves";
          c "fastsim.full_solves";
          c "parallel.chunks";
        ])
      rows
  in
  print_endline (Report.Table.render ~header printable)

let all ~smoke () =
  let rows = rows ~smoke () in
  print_rows rows;
  rows
