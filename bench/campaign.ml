(* End-to-end campaign timings: wall-clock seconds for Pipeline.run
   (transform + 2ⁿ−1 configuration emulations + fault simulation +
   detectability matrices) per benchmark and worker count. These are
   the numbers the engine optimizations exist for, so they are timed
   whole rather than via bechamel micro-runs.

   Every case is swept over jobs ∈ {1, 2, 4} — including smoke mode —
   so each report carries the parallel-scaling picture next to the
   absolute numbers: speedup = t(jobs=1)/t(jobs=n) and efficiency =
   speedup/effective_jobs for the same circuit and grid, where
   effective_jobs is the worker count after Util.Parallel's hardware
   clamp. On a machine with fewer cores than requested workers the
   clamp makes the extra rows degenerate to a smaller schedule;
   normalizing by the clamped count keeps the efficiency column about
   the engine rather than the runner — and a clamped run that is
   *slower* than jobs=1 is exactly the oversubscription bug the clamp
   exists to prevent (the --baseline gate fails on it).

   Each case is timed twice: once with the observability sinks
   disabled (the headline number — instrumentation must be free when
   off) and once with Obs.Metrics enabled, which also yields the
   solver-counter columns for BENCH_<date>.json. *)

module P = Mcdft_core.Pipeline

type row = {
  label : string;
  case : string;  (* label minus the jobs suffix — keys the jobs sweep *)
  jobs : int;
  seconds : float;  (* metrics disabled — the headline number *)
  seconds_metrics_on : float;
  counters : (string * int) list;
}

let time_s f =
  let t0 = Unix.gettimeofday () in
  ignore (f ());
  Unix.gettimeofday () -. t0

(* Best-of-two for the headline number: the variance that matters on a
   shared runner is one-sided (page-fault storms, a neighbour burning
   the core), so the minimum is the better estimator of the workload's
   actual cost than the mean. *)
let time_best2_s f = Float.min (time_s f) (time_s f)

(* The counters worth a column: solver-mix and scheduler activity. *)
let counter_columns =
  [
    "fastsim.smw_solves";
    "fastsim.full_solves";
    "fastsim.refine_steps";
    "fastsim.structural_faults";
    "fastsim.wcache_hits";
    "fastsim.wcache_misses";
    "mna.fills";
    "parallel.chunks";
    "parallel.steals";
  ]

let jobs_sweep = [ 1; 2; 4 ]

(* [(label, seconds)] rows. Smoke mode keeps CI fast: the biquad only,
   a coarse grid — but still the full jobs sweep, so the scaling gate
   has data to act on. *)
let rows ~smoke () =
  let cases =
    if smoke then [ (Circuits.Tow_thomas.make (), 10) ]
    else
      [ (Circuits.Tow_thomas.make (), 30); (Circuits.Leapfrog.make (), 30) ]
  in
  List.concat_map
    (fun (b, ppd) ->
      List.map
        (fun jobs ->
          let run () = P.run ~points_per_decade:ppd ~jobs b in
          (* One untimed warm-up per case, and Gc.full_major (not
             compact) between timings: the first run of a large case
             in a fresh process pays hundreds of thousands of minor
             page faults while the heap's OS pages are mapped and
             settled (observed 3-5x wall-clock on the first leapfrog
             run, dropping to a stable floor once warm), and
             compaction returns those pages to the OS — re-raising the
             fault storm for the very next run. full_major still
             collects the previous case's garbage, so a timing does
             not inherit GC debt, but keeps the pools mapped. *)
          Obs.Metrics.set_enabled false;
          ignore (run ());
          Gc.full_major ();
          let seconds = time_best2_s run in
          Gc.full_major ();
          Obs.Metrics.reset ();
          Obs.Metrics.set_enabled true;
          let gc0 = Gc.quick_stat () in
          let seconds_metrics_on = time_s run in
          let gc1 = Gc.quick_stat () in
          Obs.Metrics.set_enabled false;
          let snap = Obs.Metrics.snapshot () in
          Obs.Metrics.reset ();
          let case =
            Printf.sprintf "campaign/%s ppd=%d" b.Circuits.Benchmark.name ppd
          in
          {
            label = Printf.sprintf "%s jobs=%d" case jobs;
            case;
            jobs;
            seconds;
            seconds_metrics_on;
            counters =
              List.map (fun c -> (c, Obs.Metrics.counter snap c)) counter_columns
              (* GC activity of the metrics-on run (the calling
                 domain's view): with the off-heap solver state, a
                 warmed campaign should barely move these. *)
              @ [
                  ( "gc.minor_words",
                    int_of_float (gc1.Gc.minor_words -. gc0.Gc.minor_words) );
                  ( "gc.major_collections",
                    gc1.Gc.major_collections - gc0.Gc.major_collections );
                ];
          })
        jobs_sweep)
    cases

(* Parallel efficiency of a row against its jobs=1 sibling in the same
   sweep: speedup/effective_jobs, where speedup = t(jobs=1)/t(this
   row) and effective_jobs is the worker count the scheduler really
   ran after the hardware clamp (Util.Parallel.effective_jobs).
   Normalizing by the requested count would report 1/jobs on any
   machine with fewer cores than requested — a statement about the
   runner, not the engine. Normalizing by the clamped count makes the
   metric machine-honest: on a big machine it is the classic
   speedup/jobs; on a small one a clamped row measures pure scheduling
   overhead and should sit near 1.0. [None] when the sweep has no
   jobs=1 sibling or its timing is degenerate. *)
let efficiency rows r =
  match
    List.find_opt (fun r1 -> r1.case = r.case && r1.jobs = 1) rows
  with
  | Some r1 when r.seconds > 0.0 && r1.seconds > 0.0 ->
      Some
        (r1.seconds /. r.seconds
        /. float_of_int (Util.Parallel.effective_jobs r.jobs))
  | _ -> None

let print_rows rows =
  print_endline "\n==== CAMPAIGN: end-to-end Pipeline.run timings ====\n";
  let header =
    [
      "campaign"; "time (s)"; "metrics on (s)"; "speedup"; "eff"; "smw"; "full";
      "chunks"; "steals"; "gc minor words";
    ]
  in
  let printable =
    List.map
      (fun r ->
        let c name = string_of_int (List.assoc name r.counters) in
        let speedup, eff =
          match efficiency rows r with
          | Some e ->
              ( Printf.sprintf "%.2fx"
                  (e *. float_of_int (Util.Parallel.effective_jobs r.jobs)),
                Printf.sprintf "%.2f" e )
          | None -> ("-", "-")
        in
        [
          r.label;
          Printf.sprintf "%.3f" r.seconds;
          Printf.sprintf "%.3f" r.seconds_metrics_on;
          speedup;
          eff;
          c "fastsim.smw_solves";
          c "fastsim.full_solves";
          c "parallel.chunks";
          c "parallel.steals";
          c "gc.minor_words";
        ])
      rows
  in
  print_endline (Report.Table.render ~header printable)

let all ~smoke () =
  let rows = rows ~smoke () in
  print_rows rows;
  rows
