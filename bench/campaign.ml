(* End-to-end campaign timings: wall-clock seconds for Pipeline.run
   (transform + 2ⁿ−1 configuration emulations + fault simulation +
   detectability matrices) per benchmark and worker count. These are
   the numbers the engine optimizations exist for, so they are timed
   whole rather than via bechamel micro-runs. *)

module P = Mcdft_core.Pipeline

let time_s f =
  let t0 = Unix.gettimeofday () in
  ignore (f ());
  Unix.gettimeofday () -. t0

(* [(label, seconds)] rows. Smoke mode keeps CI fast: the biquad only,
   a coarse grid, one worker. *)
let rows ~smoke () =
  let cases =
    if smoke then [ (Circuits.Tow_thomas.make (), 10, [ 1 ]) ]
    else
      [
        (Circuits.Tow_thomas.make (), 30, [ 1; 4 ]);
        (Circuits.Leapfrog.make (), 30, [ 1; 4 ]);
      ]
  in
  List.concat_map
    (fun (b, ppd, jobs_list) ->
      List.map
        (fun jobs ->
          (* start each case from a compacted heap so a timing does not
             inherit GC debt from whatever ran before it *)
          Gc.compact ();
          let s = time_s (fun () -> P.run ~points_per_decade:ppd ~jobs b) in
          ( Printf.sprintf "campaign/%s ppd=%d jobs=%d" b.Circuits.Benchmark.name ppd
              jobs,
            s ))
        jobs_list)
    cases

let print_rows rows =
  print_endline "\n==== CAMPAIGN: end-to-end Pipeline.run timings ====\n";
  let printable = List.map (fun (name, s) -> [ name; Printf.sprintf "%.3f" s ]) rows in
  print_endline (Report.Table.render ~header:[ "campaign"; "time (s)" ] printable)

let all ~smoke () =
  let rows = rows ~smoke () in
  print_rows rows;
  rows
