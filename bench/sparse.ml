(* Sparse-backend benchmarks: the dense/sparse crossover table and the
   bigladder acceptance campaign.

   The crossover table times one Fastsim.create per backend over a
   small frequency grid at growing ladder sizes — create is exactly
   "assemble + factor + nominal solve per frequency", so seconds
   divided by grid points is the per-frequency solve cost each backend
   pays. The campaign compares a full Pipeline.run on a 300-stage
   bigladder (MNA dimension > 300) between forced backends, checks the
   detect matrices agree verdict-for-verdict, and checks that pruning
   (on by default) replicates rows bitwise-identically to a
   ~prune:false run while skipping real work. Both facts land in
   BENCH_<date>.json next to the timings. *)

module P = Mcdft_core.Pipeline
module M = Testability.Matrix
module F = Testability.Fastsim

type crossover_row = {
  stages : int;
  dim : int;  (* MNA unknowns *)
  nnz : int;
  dense_ns_per_solve : float;
  sparse_ns_per_solve : float;
}

type campaign = {
  circuit : string;
  mna_dim : int;
  points_per_decade : int;
  n_faults : int;
  dense_seconds : float;
  sparse_seconds : float;
  speedup : float;
  verdicts_identical : bool;
  equivalence_groups : int;
  pruned_configs : int;
  noprune_seconds : float;
  prune_bitwise_identical : bool;
}

type t = { crossover : crossover_row list; campaign : campaign }

let time_s f =
  let t0 = Unix.gettimeofday () in
  ignore (f ());
  Unix.gettimeofday () -. t0

(* One deterministic bigladder per size: the seed array keys the value
   draws off the stage count so every run times the same circuit. *)
let circuit_of ~stages =
  Conformance.Gen.bigladder ~stages (Random.State.make [| 0x5bad; stages |])

let center_hz = 10_000.0

let crossover ~smoke () =
  let sizes = if smoke then [ 40; 80; 160 ] else [ 40; 80; 160; 320; 640 ] in
  (* a short grid keeps the biggest dense point affordable; ns/solve
     normalizes the grid length away *)
  let grid = Testability.Grid.around ~points_per_decade:3 ~center_hz () in
  let freqs_hz = Testability.Grid.freqs_hz grid in
  let n_solves = float_of_int (Array.length freqs_hz) in
  List.map
    (fun stages ->
      let netlist, output = circuit_of ~stages in
      let sp = Mna.Stamps.build_sparse (Mna.Index.build netlist) netlist in
      let create backend () =
        F.create ~backend ~source:"V1" ~output ~freqs_hz netlist
      in
      (* untimed first build per size settles the allocator pages the
         timed builds would otherwise fault in *)
      ignore (create F.Sparse ());
      let dense_s = time_s (create F.Dense) in
      let sparse_s = time_s (create F.Sparse) in
      {
        stages;
        dim = Mna.Stamps.sparse_size sp;
        nnz = Mna.Stamps.sparse_nnz sp;
        dense_ns_per_solve = dense_s *. 1e9 /. n_solves;
        sparse_ns_per_solve = sparse_s *. 1e9 /. n_solves;
      })
    sizes

let campaign ~smoke () =
  let stages = if smoke then 100 else 300 in
  let ppd = 10 in
  let netlist, output = circuit_of ~stages in
  let dim = Mna.Stamps.sparse_size (Mna.Stamps.build_sparse (Mna.Index.build netlist) netlist) in
  let b =
    {
      Circuits.Benchmark.name = Printf.sprintf "bigladder-%d" stages;
      description = "big RC double ladder (sparse acceptance)";
      netlist;
      source = "V1";
      output;
      center_hz;
    }
  in
  (* every 5th passive: enough faults to exercise the SMW machinery on
     both backends without the per-view w-cache dominating memory at
     this dimension *)
  let faults =
    List.filteri (fun i _ -> i mod 5 = 0) (Fault.deviation_faults netlist)
  in
  let run ~backend ~prune () =
    P.run ~points_per_decade:ppd ~faults ~jobs:1 ~backend ~prune b
  in
  let sparse_t = run ~backend:F.Sparse ~prune:true () in
  let sparse_seconds = time_s (run ~backend:F.Sparse ~prune:true) in
  Gc.full_major ();
  let dense_t = ref sparse_t in
  let dense_seconds =
    time_s (fun () ->
        dense_t := run ~backend:F.Dense ~prune:true ();
        !dense_t)
  in
  let dense_t = !dense_t in
  Gc.full_major ();
  let noprune_t = ref sparse_t in
  let noprune_seconds =
    time_s (fun () ->
        noprune_t := run ~backend:F.Sparse ~prune:false ();
        !noprune_t)
  in
  let noprune_t = !noprune_t in
  {
    circuit = b.Circuits.Benchmark.name;
    mna_dim = dim;
    points_per_decade = ppd;
    n_faults = List.length faults;
    dense_seconds;
    sparse_seconds;
    speedup = dense_seconds /. sparse_seconds;
    verdicts_identical =
      dense_t.P.matrix.M.detect = sparse_t.P.matrix.M.detect;
    equivalence_groups = sparse_t.P.equivalence_groups;
    pruned_configs = sparse_t.P.pruned_configs;
    noprune_seconds;
    prune_bitwise_identical =
      sparse_t.P.matrix.M.detect = noprune_t.P.matrix.M.detect
      && sparse_t.P.matrix.M.omega = noprune_t.P.matrix.M.omega;
  }

let to_json { crossover; campaign = c } =
  [
    ( "sparse_crossover",
      Report.Json.List
        (List.map
           (fun r ->
             Report.Json.Object
               [
                 ("stages", Report.Json.int r.stages);
                 ("n", Report.Json.int r.dim);
                 ("nnz", Report.Json.int r.nnz);
                 ("dense_ns_per_solve", Report.Json.Number r.dense_ns_per_solve);
                 ("sparse_ns_per_solve", Report.Json.Number r.sparse_ns_per_solve);
               ])
           crossover) );
    ( "sparse_campaign",
      Report.Json.Object
        [
          ("circuit", Report.Json.String c.circuit);
          ("mna_dim", Report.Json.int c.mna_dim);
          ("points_per_decade", Report.Json.int c.points_per_decade);
          ("n_faults", Report.Json.int c.n_faults);
          ("dense_seconds", Report.Json.Number c.dense_seconds);
          ("sparse_seconds", Report.Json.Number c.sparse_seconds);
          ("speedup", Report.Json.Number c.speedup);
          ("verdicts_identical", Report.Json.Bool c.verdicts_identical);
          ("equivalence_groups", Report.Json.int c.equivalence_groups);
          ("pruned_configs", Report.Json.int c.pruned_configs);
          ("noprune_seconds", Report.Json.Number c.noprune_seconds);
          ( "prune_matrices_bitwise_identical",
            Report.Json.Bool c.prune_bitwise_identical );
        ] );
  ]

let print_result { crossover; campaign = c } =
  print_endline "\n==== SPARSE: dense/sparse crossover (ns per A(jw) factor+solve) ====\n";
  print_endline
    (Report.Table.render
       ~header:[ "stages"; "n"; "nnz"; "dense ns/solve"; "sparse ns/solve"; "ratio" ]
       (List.map
          (fun r ->
            [
              string_of_int r.stages;
              string_of_int r.dim;
              string_of_int r.nnz;
              Printf.sprintf "%.0f" r.dense_ns_per_solve;
              Printf.sprintf "%.0f" r.sparse_ns_per_solve;
              Printf.sprintf "%.1fx" (r.dense_ns_per_solve /. r.sparse_ns_per_solve);
            ])
          crossover));
  Printf.printf
    "\n==== SPARSE: %s campaign (n=%d, ppd=%d, %d faults) ====\n\n"
    c.circuit c.mna_dim c.points_per_decade c.n_faults;
  Printf.printf "  dense   : %.3f s\n" c.dense_seconds;
  Printf.printf "  sparse  : %.3f s   (%.1fx, verdicts %s)\n" c.sparse_seconds
    c.speedup
    (if c.verdicts_identical then "identical" else "DIFFER");
  Printf.printf
    "  pruning : %d groups, %d rows replicated; no-prune %.3f s, matrices %s\n"
    c.equivalence_groups c.pruned_configs c.noprune_seconds
    (if c.prune_bitwise_identical then "bitwise-identical" else "DIFFER")

let all ~smoke () =
  let r = { crossover = crossover ~smoke (); campaign = campaign ~smoke () } in
  print_result r;
  r
