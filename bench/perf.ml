(* Bechamel timing benches for the computational kernels behind each
   experiment: MNA solves and sweeps (the fault simulator), symbolic
   extraction, detectability analysis, and the covering solvers. *)

open Bechamel
open Toolkit

module P = Mcdft_core.Pipeline
module PD = Mcdft_core.Paper_data

let biquad = Circuits.Tow_thomas.make ()
let biquad_netlist = biquad.Circuits.Benchmark.netlist
let leapfrog = Circuits.Leapfrog.make ()

let grid_small = Testability.Grid.around ~points_per_decade:5 ~center_hz:1000.0 ()

let probe = { Testability.Detect.source = "Vin"; output = "v2" }

let paper_problem = Cover.Clause.of_matrix PD.detectability_matrix

let random_problem ~n ~m seed =
  let st = Random.State.make [| seed |] in
  let d = Array.init n (fun _ -> Array.init m (fun _ -> Random.State.float st 1.0 < 0.25)) in
  for j = 0 to m - 1 do
    if not (Array.exists (fun row -> row.(j)) d) then d.(Random.State.int st n).(j) <- true
  done;
  Cover.Clause.of_matrix d

let big_problem = random_problem ~n:31 ~m:60 7

let dft = Multiconfig.Transform.make ~source:"Vin" ~output:"v2" biquad_netlist
let c5 = Multiconfig.Configuration.make ~n_opamps:3 5

let fastsim =
  Testability.Fastsim.create ~source:"Vin" ~output:"v2"
    ~freqs_hz:(Testability.Grid.freqs_hz grid_small) biquad_netlist

let r4_dev = Fault.deviation ~element:"R4" 1.2

let tests =
  [
    (* E1/E3/E4 kernel: one AC solve and one log sweep *)
    Test.make ~name:"mna/solve biquad (1 freq)" (Staged.stage (fun () ->
        ignore (Mna.Ac.transfer ~source:"Vin" ~output:"v2" biquad_netlist ~omega:6283.0)));
    Test.make ~name:"mna/solve leapfrog (1 freq)" (Staged.stage (fun () ->
        ignore
          (Mna.Ac.transfer ~source:"Vin" ~output:"y5"
             leapfrog.Circuits.Benchmark.netlist ~omega:6283.0)));
    Test.make ~name:"mna/sweep biquad (21 freqs)" (Staged.stage (fun () ->
        ignore
          (Mna.Ac.sweep ~source:"Vin" ~output:"v2" biquad_netlist
             ~freqs_hz:(Testability.Grid.freqs_hz grid_small))));
    (* the campaign engine: rank-1 faulty sweep against the cached LU *)
    Test.make ~name:"fastsim/rank1 sweep (21 freqs)" (Staged.stage (fun () ->
        ignore (Testability.Fastsim.response fastsim r4_dev)));
    (* symbolic oracle *)
    Test.make ~name:"symbolic/transfer biquad" (Staged.stage (fun () ->
        ignore (Mna.Symbolic.transfer ~source:"Vin" ~output:"v2" biquad_netlist)));
    (* E1: one fault analysis under both criteria *)
    Test.make ~name:"detect/fault, fixed eps" (Staged.stage (fun () ->
        ignore
          (Testability.Detect.analyze_fault
             ~criterion:(Testability.Detect.Fixed_tolerance 0.1) probe grid_small
             biquad_netlist
             (Fault.deviation ~element:"R4" 1.2))));
    Test.make ~name:"detect/fault, envelope" (Staged.stage (fun () ->
        ignore
          (Testability.Detect.analyze_fault
             ~criterion:
               (Testability.Detect.Process_envelope { component_tol = 0.04; floor = 0.02 })
             probe grid_small biquad_netlist
             (Fault.deviation ~element:"R4" 1.2))));
    (* E3: configuration emulation *)
    Test.make ~name:"multiconfig/emulate C5" (Staged.stage (fun () ->
        ignore (Multiconfig.Transform.emulate dft c5)));
    (* E6-E8 kernels: covering machinery on the paper instance *)
    Test.make ~name:"cover/petrick paper 7x8" (Staged.stage (fun () ->
        ignore (Cover.Petrick.expand paper_problem)));
    Test.make ~name:"cover/exact paper 7x8" (Staged.stage (fun () ->
        ignore (Cover.Solver.exact paper_problem)));
    Test.make ~name:"cover/greedy paper 7x8" (Staged.stage (fun () ->
        ignore (Cover.Solver.greedy paper_problem)));
    (* extension kernels: adjoint methods and the transient engine *)
    Test.make ~name:"mna/adjoint sensitivities" (Staged.stage (fun () ->
        ignore
          (Mna.Sensitivity.at_omega ~source:"Vin" ~output:"v2" biquad_netlist
             ~omega:6283.0)));
    Test.make ~name:"mna/noise psd" (Staged.stage (fun () ->
        ignore (Mna.Noise.at_omega ~output:"v2" biquad_netlist ~omega:6283.0)));
    Test.make ~name:"mna/transient 100 steps" (Staged.stage (fun () ->
        ignore
          (Mna.Transient.simulate ~record:[ "v2" ] ~t_stop:1e-4 ~dt:1e-6
             biquad_netlist)));
    (* X2 kernel: a leapfrog-sized covering instance *)
    Test.make ~name:"cover/exact random 31x60" (Staged.stage (fun () ->
        ignore (Cover.Solver.exact big_problem)));
    Test.make ~name:"cover/greedy random 31x60" (Staged.stage (fun () ->
        ignore (Cover.Solver.greedy big_problem)));
  ]

let benchmark () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) () in
  let grouped = Test.make_grouped ~name:"mcdft" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = List.map (fun instance -> Analyze.all ols instance raw) instances in
  Analyze.merge ols instances results

(* [(kernel name, ns/run)] rows, sorted by name; kernels whose OLS fit
   failed are dropped. *)
let rows_of results =
  Hashtbl.fold
    (fun _instance tbl acc ->
      Hashtbl.fold
        (fun name ols acc ->
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> (name, est) :: acc
          | _ -> acc)
        tbl acc)
    results []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let print_rows rows =
  print_endline "\n==== PERF: Bechamel kernel timings ====\n";
  let printable = List.map (fun (name, ns) -> [ name; Printf.sprintf "%.1f" ns ]) rows in
  print_endline (Report.Table.render ~header:[ "kernel"; "time (ns/run)" ] printable)

let all () =
  let rows = rows_of (benchmark ()) in
  print_rows rows;
  rows
