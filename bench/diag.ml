(* Diagnosis-layer reproduction numbers: trajectory ambiguity-group
   sizes and the cover-solver work counters behind the n-detection
   optimizer. Unlike the campaign rows these are not timings — they are
   the structural quantities a reviewer checks against the circuit
   (how many faults are uniquely locatable, how hard the covering
   instances were) — so each case runs once, metrics-enabled. *)

module P = Mcdft_core.Pipeline
module T = Diagnosis.Trajectory

type row = {
  label : string;
  resolution : float;
  group_sizes : int list;  (* descending; one entry per ambiguity set *)
  counters : (string * int) list;
}

(* Solve-effort counters of one optimize(n=1) + optimize(n=2) +
   full classification round-trip. *)
let counter_columns =
  [
    "cover.bnb_nodes";
    "cover.greedy_gain_evals";
    "cover.preprocess_forced";
    "cover.preprocess_dominated";
    "diagnosis.trajectories_built";
    "diagnosis.classifications";
  ]

let row ~ppd b =
  let t = P.run ~points_per_decade:ppd ~jobs:1 b in
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  ignore (P.optimize t);
  ignore (P.optimize ~n_detect:2 t);
  (* force the branch-and-bound path too (petrick_limit 0), so the
     bnb-node counter reflects the exact solver on this instance, and
     one greedy solve of the same n=2 system for the gain-eval count *)
  ignore (P.optimize ~petrick_limit:0 ~n_detect:2 t);
  ignore
    (Cover.Solver.greedy
       (Cover.Clause.of_matrix ~n:2 t.P.input.Mcdft_core.Optimizer.detect));
  let traj = T.of_pipeline t in
  List.iter (fun f -> ignore (T.classify traj (T.simulate traj f))) (T.faults traj);
  let snap = Obs.Metrics.snapshot () in
  Obs.Metrics.set_enabled false;
  Obs.Metrics.reset ();
  let group_sizes =
    List.map List.length (T.ambiguity_sets traj)
    |> List.sort (fun a b -> Int.compare b a)
  in
  {
    label = Printf.sprintf "diagnosis/%s ppd=%d" b.Circuits.Benchmark.name ppd;
    resolution = T.resolution traj;
    group_sizes;
    counters = List.map (fun c -> (c, Obs.Metrics.counter snap c)) counter_columns;
  }

let rows ~smoke () =
  let cases =
    if smoke then [ (Circuits.Tow_thomas.make (), 10) ]
    else [ (Circuits.Tow_thomas.make (), 30); (Circuits.Leapfrog.make (), 30) ]
  in
  List.map (fun (b, ppd) -> row ~ppd b) cases

let print_rows rows =
  print_endline "\n==== DIAGNOSIS: ambiguity groups and cover-solver work ====\n";
  let header =
    [ "case"; "resolution"; "group sizes"; "bnb nodes"; "gain evals"; "classify" ]
  in
  let printable =
    List.map
      (fun r ->
        let c name = string_of_int (List.assoc name r.counters) in
        [
          r.label;
          Printf.sprintf "%.1f%%" (100.0 *. r.resolution);
          String.concat "," (List.map string_of_int r.group_sizes);
          c "cover.bnb_nodes";
          c "cover.greedy_gain_evals";
          c "diagnosis.classifications";
        ])
      rows
  in
  print_endline (Report.Table.render ~header printable)

let all ~smoke () =
  let rows = rows ~smoke () in
  print_rows rows;
  rows
