(* Reproduction + performance harness.

     dune exec bench/main.exe            - everything
     dune exec bench/main.exe -- repro   - paper tables/figures only
     dune exec bench/main.exe -- perf    - bechamel timings only *)

let () =
  let what = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  (match what with
  | "repro" -> Repro.all ()
  | "perf" -> Perf.all ()
  | "all" ->
      Repro.all ();
      Perf.all ()
  | other ->
      Printf.eprintf "unknown target %S (expected: repro | perf | all)\n" other;
      exit 2);
  print_newline ()
