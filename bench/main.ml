(* Reproduction + performance harness.

     dune exec bench/main.exe               - everything
     dune exec bench/main.exe -- repro      - paper tables/figures only
     dune exec bench/main.exe -- perf       - bechamel kernel timings only
     dune exec bench/main.exe -- campaign   - end-to-end campaign timings only

   Add --smoke to shrink the campaign workload (CI). Any run that
   produces timings also writes them to BENCH_<yyyy-mm-dd>.json in the
   current directory. *)

let today () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

let write_json ~kernels ~campaign =
  if kernels <> [] || campaign <> [] then begin
    let date = today () in
    let obj rows = Report.Json.Object (List.map (fun (k, v) -> (k, Report.Json.Number v)) rows) in
    let doc =
      Report.Json.Object
        [
          ("date", Report.Json.String date);
          ("kernels_ns_per_run", obj kernels);
          ("campaign_seconds", obj campaign);
        ]
    in
    let path = Printf.sprintf "BENCH_%s.json" date in
    let oc = open_out path in
    output_string oc (Report.Json.to_string ~indent:2 doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" path
  end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let smoke = List.mem "--smoke" args in
  let what =
    match List.filter (fun a -> a <> "--smoke") args with
    | [] -> "all"
    | [ w ] -> w
    | _ ->
        prerr_endline "usage: main.exe [repro|perf|campaign|all] [--smoke]";
        exit 2
  in
  let kernels = ref [] and campaign = ref [] in
  (match what with
  | "repro" -> Repro.all ()
  | "perf" -> kernels := Perf.all ()
  | "campaign" -> campaign := Campaign.all ~smoke ()
  | "all" ->
      (* campaigns first: the wall-clock timings are the headline
         numbers and should not inherit allocator state from the
         repro/bechamel phases *)
      campaign := Campaign.all ~smoke ();
      Repro.all ();
      kernels := Perf.all ()
  | other ->
      Printf.eprintf "unknown target %S (expected: repro | perf | campaign | all)\n"
        other;
      exit 2);
  write_json ~kernels:!kernels ~campaign:!campaign;
  print_newline ()
