(* Reproduction + performance harness.

     dune exec bench/main.exe               - everything
     dune exec bench/main.exe -- repro      - paper tables/figures only
     dune exec bench/main.exe -- perf       - bechamel kernel timings only
     dune exec bench/main.exe -- campaign   - end-to-end campaign timings only

     dune exec bench/main.exe -- diag       - diagnosis/cover structural numbers only
     dune exec bench/main.exe -- sparse     - dense/sparse crossover + bigladder campaign
     dune exec bench/main.exe -- certify    - interval-certified campaign fractions/timings
     dune exec bench/main.exe -- adaptive   - coverage-directed refinement solve counts

   Add --smoke to shrink the campaign workload (CI). Any run that
   produces timings also writes them to BENCH_<yyyy-mm-dd>.json in the
   current directory; campaign rows carry the solver counters of a
   metrics-enabled rerun alongside the disabled-sink wall-clock.

   --baseline FILE gates the disabled-sink campaign numbers against a
   committed baseline: any row more than 5 % (and 50 ms, to absorb
   timer noise on sub-second smoke runs) slower than its baseline
   entry fails the process — the observability layer must stay free
   when disabled. The same flag also gates worker scaling within the
   fresh run: a jobs>1 row slower than its jobs=1 sibling (same
   slack) fails, so oversubscription regressions cannot land; and a
   jobs>1 row whose parallel efficiency falls more than 0.15 below
   the baseline's recorded campaign_parallel_efficiency fails, so
   scheduler/scaling regressions cannot land either. The efficiency
   gate only arms when the hardware clamp leaves more than one worker
   (Util.Parallel.effective_jobs) — on a single-core runner the
   efficiency column measures scheduling overhead, not scaling. *)

let today () =
  let tm = Unix.localtime (Unix.time ()) in
  Printf.sprintf "%04d-%02d-%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday

let write_json ~kernels ~campaign ~diag ~sparse ~certify ~adaptive =
  let num_obj rows =
    Report.Json.Object (List.map (fun (k, v) -> (k, Report.Json.Number v)) rows)
  in
  (* Only targets that actually ran contribute sections; sections
     already in today's file from an earlier run of another target are
     preserved, so `bench all` followed by `bench sparse` accumulates
     one complete BENCH_<date>.json instead of overwriting it. *)
  let sections =
    (if kernels <> [] then [ ("kernels_ns_per_run", num_obj kernels) ] else [])
    @ (if campaign <> [] then
         [
           ( "campaign_seconds",
             num_obj
               (List.map (fun r -> (r.Campaign.label, r.Campaign.seconds)) campaign)
           );
           ( "campaign_seconds_metrics_on",
             num_obj
               (List.map
                  (fun r -> (r.Campaign.label, r.Campaign.seconds_metrics_on))
                  campaign) );
           ( "campaign_parallel_efficiency",
             num_obj
               (List.filter_map
                  (fun r ->
                    Option.map
                      (fun e -> (r.Campaign.label, e))
                      (Campaign.efficiency campaign r))
                  campaign) );
           ( "campaign_counters",
             Report.Json.Object
               (List.map
                  (fun r ->
                    ( r.Campaign.label,
                      Report.Json.Object
                        (List.map
                           (fun (k, v) -> (k, Report.Json.int v))
                           r.Campaign.counters) ))
                  campaign) );
         ]
       else [])
    @ (if diag <> [] then
         [
           ( "diagnosis",
             Report.Json.Object
               (List.map
                  (fun r ->
                    ( r.Diag.label,
                      Report.Json.Object
                        [
                          ("resolution", Report.Json.Number r.Diag.resolution);
                          ( "ambiguity_group_sizes",
                            Report.Json.List
                              (List.map Report.Json.int r.Diag.group_sizes) );
                          ( "counters",
                            Report.Json.Object
                              (List.map
                                 (fun (k, v) -> (k, Report.Json.int v))
                                 r.Diag.counters) );
                        ] ))
                  diag) );
         ]
       else [])
    @ (match sparse with Some s -> Sparse.to_json s | None -> [])
    @ (match certify with [] -> [] | rows -> Certify.to_json rows)
    @ match adaptive with [] -> [] | rows -> Adaptive.to_json rows
  in
  if sections <> [] then begin
    let date = today () in
    let path = Printf.sprintf "BENCH_%s.json" date in
    let preserved =
      match In_channel.with_open_text path In_channel.input_all with
      | exception Sys_error _ -> []
      | content -> (
          match Report.Json.of_string content with
          | Ok (Report.Json.Object old) ->
              List.filter
                (fun (k, _) -> k <> "date" && not (List.mem_assoc k sections))
                old
          | _ -> [])
    in
    let doc =
      Report.Json.Object
        ((("date", Report.Json.String date) :: preserved) @ sections)
    in
    let oc = open_out path in
    output_string oc (Report.Json.to_string ~indent:2 doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "wrote %s\n" path
  end

let check_baseline path campaign =
  let fail msg =
    Printf.eprintf "baseline check: %s\n" msg;
    exit 1
  in
  let content =
    try In_channel.with_open_text path In_channel.input_all
    with Sys_error msg -> fail msg
  in
  let doc =
    match Report.Json.of_string content with
    | Ok doc -> doc
    | Error msg -> fail (Printf.sprintf "%s: %s" path msg)
  in
  let baseline_seconds label =
    match Report.Json.member "campaign_seconds" doc with
    | Some (Report.Json.Object rows) -> (
        match List.assoc_opt label rows with
        | Some (Report.Json.Number s) -> Some s
        | _ -> None)
    | _ -> None
  in
  let regressions =
    List.filter_map
      (fun r ->
        match baseline_seconds r.Campaign.label with
        | None -> None  (* baseline predates this row; nothing to gate *)
        | Some base ->
            let allowed = Float.max (base *. 1.05) (base +. 0.05) in
            if r.Campaign.seconds > allowed then
              Some
                (Printf.sprintf "%s: %.3fs vs baseline %.3fs (allowed %.3fs)"
                   r.Campaign.label r.Campaign.seconds base allowed)
            else None)
      campaign
  in
  if regressions <> [] then
    fail ("disabled-sink campaign regressed\n  " ^ String.concat "\n  " regressions);
  (* Jobs-scaling gate, on the freshly measured rows rather than the
     committed file: asking for more workers must never cost
     wall-clock. With the worker clamp in Util.Parallel and
     allocation-free solve kernels, a jobs=4 row slower than its
     jobs=1 sibling (beyond the same timer-noise slack) means
     oversubscription or cross-domain GC pressure crept back in. *)
  let scaling_regressions =
    List.filter_map
      (fun r ->
        if r.Campaign.jobs <= 1 then None
        else
          match
            List.find_opt
              (fun r1 -> r1.Campaign.case = r.Campaign.case && r1.Campaign.jobs = 1)
              campaign
          with
          | None -> None
          | Some r1 ->
              let allowed =
                Float.max (r1.Campaign.seconds *. 1.05) (r1.Campaign.seconds +. 0.05)
              in
              if r.Campaign.seconds > allowed then
                Some
                  (Printf.sprintf "%s: %.3fs vs jobs=1 %.3fs (allowed %.3fs)"
                     r.Campaign.label r.Campaign.seconds r1.Campaign.seconds
                     allowed)
              else None)
      campaign
  in
  if scaling_regressions <> [] then
    fail
      ("worker scaling regressed (jobs>1 slower than jobs=1)\n  "
      ^ String.concat "\n  " scaling_regressions);
  (* Parallel-efficiency floor: fresh jobs>1 rows must stay within an
     absolute allowance of the baseline's recorded efficiency. Armed
     only when the hardware clamp actually grants extra workers —
     clamped rows measure scheduling overhead, not scaling, and their
     efficiency is noise around 1.0. The allowance is absolute (not
     relative) because efficiency already is a ratio; 0.15 absorbs
     shared-runner timing noise on both the jobs=1 and jobs=n
     measurements. *)
  let baseline_efficiency label =
    match Report.Json.member "campaign_parallel_efficiency" doc with
    | Some (Report.Json.Object rows) -> (
        match List.assoc_opt label rows with
        | Some (Report.Json.Number e) -> Some e
        | _ -> None)
    | _ -> None
  in
  (* An unarmed gate must say so: on a single-core runner every jobs>1
     row is clamped to one effective worker, the filter below matches
     nothing, and without this line the run reads as "efficiency
     checked, ok" when nothing was checked at all. *)
  (if
     List.exists (fun r -> r.Campaign.jobs > 1) campaign
     && List.for_all
          (fun r ->
            r.Campaign.jobs <= 1
            || Util.Parallel.effective_jobs r.Campaign.jobs <= 1)
          campaign
   then print_endline "efficiency gate: UNARMED (effective_jobs=1)");
  let efficiency_allowance = 0.15 in
  let efficiency_regressions =
    List.filter_map
      (fun r ->
        if r.Campaign.jobs <= 1 || Util.Parallel.effective_jobs r.Campaign.jobs <= 1
        then None
        else
          match (baseline_efficiency r.Campaign.label, Campaign.efficiency campaign r)
          with
          | Some base, Some fresh when fresh < base -. efficiency_allowance ->
              Some
                (Printf.sprintf "%s: efficiency %.2f vs baseline %.2f (floor %.2f)"
                   r.Campaign.label fresh base (base -. efficiency_allowance))
          | _ -> None)
      campaign
  in
  if efficiency_regressions <> [] then
    fail
      ("parallel efficiency regressed below the baseline floor\n  "
      ^ String.concat "\n  " efficiency_regressions);
  Printf.printf "baseline check: ok (%s)\n" path

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let smoke = List.mem "--smoke" args in
  let rec extract_baseline acc = function
    | "--baseline" :: path :: rest -> (Some path, List.rev_append acc rest)
    | a :: rest -> extract_baseline (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let baseline, args = extract_baseline [] args in
  let what =
    match List.filter (fun a -> a <> "--smoke") args with
    | [] -> "all"
    | [ w ] -> w
    | _ ->
        prerr_endline
          "usage: main.exe [repro|perf|campaign|diag|sparse|certify|adaptive|all] \
           [--smoke] [--baseline FILE]";
        exit 2
  in
  let kernels = ref [] and campaign = ref [] and diag = ref [] in
  let sparse = ref None and certify = ref [] and adaptive = ref [] in
  (match what with
  | "repro" -> Repro.all ()
  | "perf" -> kernels := Perf.all ()
  | "campaign" -> campaign := Campaign.all ~smoke ()
  | "diag" -> diag := Diag.all ~smoke ()
  | "sparse" -> sparse := Some (Sparse.all ~smoke ())
  | "certify" -> certify := Certify.all ~smoke ()
  | "adaptive" -> adaptive := Adaptive.all ~smoke ()
  | "all" ->
      (* campaigns first: the wall-clock timings are the headline
         numbers and should not inherit allocator state from the
         repro/bechamel phases *)
      campaign := Campaign.all ~smoke ();
      Repro.all ();
      kernels := Perf.all ();
      diag := Diag.all ~smoke ()
  | other ->
      Printf.eprintf
        "unknown target %S (expected: repro | perf | campaign | diag | sparse | \
         certify | adaptive | all)\n"
        other;
      exit 2);
  write_json ~kernels:!kernels ~campaign:!campaign ~diag:!diag ~sparse:!sparse
    ~certify:!certify ~adaptive:!adaptive;
  Option.iter (fun path -> check_baseline path !campaign) baseline;
  print_newline ()
