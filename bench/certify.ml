(* Interval-certification benchmarks: what does the static pass prove,
   and what does consuming its certificates change end-to-end?

   Each row runs the same Fixed_tolerance campaign twice — certification
   on (the default) and off — and reports the proved cell/point
   fractions, the numeric solves the campaign actually skipped (the
   certify.solves_skipped counter of a metrics-enabled rerun), both
   wall-clocks, and whether the two matrices came out bitwise identical
   (they must — the certify test suite and the certify-soundness fuzz
   oracle enforce it; the bench records the fact next to the numbers).

   Honesty note: certification is not a wall-clock optimization and the
   seconds columns are expected to show it. One symbolic Bareiss
   elimination per (view × fault) cell costs more than the warmed SMW
   solves it lets the campaign skip, and the bigladder row is gated out
   entirely by the max_dim cap (symbolic elimination at MNA dimension in
   the hundreds is hopeless), so its proved counts are honest zeros.
   What the pass buys is solver-independent certificates: verdicts that
   hold over the continuous frequency band, not just at the sampled
   grid points. *)

module P = Mcdft_core.Pipeline
module M = Testability.Matrix
module C = Analysis.Certify

type row = {
  circuit : string;
  points_per_decade : int;
  n_faults : int;
  cells : int;
  cells_proved : int;
  points : int;
  points_proved : int;
  skipped_views : int;
  solves_skipped : int;
  certified_seconds : float;
  uncertified_seconds : float;
  identical : bool;
}

let criterion = Testability.Detect.Fixed_tolerance 0.10

let time_s f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let registry name =
  match Circuits.Registry.find name with
  | Some b -> b
  | None -> failwith ("bench certify: missing benchmark " ^ name)

(* Same deterministic construction as the sparse bench: the seed array
   keys the value draws off the stage count. *)
let bigladder ~stages =
  let netlist, output =
    Conformance.Gen.bigladder ~stages (Random.State.make [| 0x5bad; stages |])
  in
  {
    Circuits.Benchmark.name = Printf.sprintf "bigladder-%d" stages;
    description = "big RC double ladder (certification gate check)";
    netlist;
    source = "V1";
    output;
    center_hz = 10_000.0;
  }

let row ~ppd ?faults (b : Circuits.Benchmark.t) =
  let run ~certify () =
    P.run ~criterion ~points_per_decade:ppd ?faults ~jobs:1 ~certify b
  in
  (* warm-up settles allocator pages, as in the campaign bench *)
  Obs.Metrics.set_enabled false;
  ignore (run ~certify:true ());
  Gc.full_major ();
  let on, certified_seconds = time_s (run ~certify:true) in
  Gc.full_major ();
  let off, uncertified_seconds = time_s (run ~certify:false) in
  Gc.full_major ();
  (* counters come from a metrics-enabled rerun, the timed runs above
     keep the sinks disabled *)
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  ignore (run ~certify:true ());
  Obs.Metrics.set_enabled false;
  let snap = Obs.Metrics.snapshot () in
  Obs.Metrics.reset ();
  let stats =
    match on.P.certify with
    | Some c -> c.C.stats
    | None ->
        { C.cells = 0; cells_proved = 0; points = 0; points_proved = 0;
          skipped_views = 0 }
  in
  {
    circuit = b.Circuits.Benchmark.name;
    points_per_decade = ppd;
    n_faults = List.length on.P.faults;
    cells = stats.C.cells;
    cells_proved = stats.C.cells_proved;
    points = stats.C.points;
    points_proved = stats.C.points_proved;
    skipped_views = stats.C.skipped_views;
    solves_skipped = Obs.Metrics.counter snap "certify.solves_skipped";
    certified_seconds;
    uncertified_seconds;
    identical =
      on.P.matrix.M.detect = off.P.matrix.M.detect
      && on.P.matrix.M.omega = off.P.matrix.M.omega;
  }

let rows ~smoke () =
  if smoke then
    [
      row ~ppd:10 (registry "tow-thomas");
      row ~ppd:6 (registry "leapfrog5");
      (let b = bigladder ~stages:40 in
       row ~ppd:4
         ~faults:
           (List.filteri
              (fun i _ -> i mod 5 = 0)
              (Fault.deviation_faults b.Circuits.Benchmark.netlist))
         b);
    ]
  else
    [
      row ~ppd:30 (registry "tow-thomas");
      row ~ppd:10 (registry "leapfrog5");
      (let b = bigladder ~stages:100 in
       row ~ppd:6
         ~faults:
           (List.filteri
              (fun i _ -> i mod 5 = 0)
              (Fault.deviation_faults b.Circuits.Benchmark.netlist))
         b);
    ]

let to_json rows =
  [
    ( "certify",
      Report.Json.Object
        (List.map
           (fun r ->
             ( r.circuit,
               Report.Json.Object
                 [
                   ("points_per_decade", Report.Json.int r.points_per_decade);
                   ("n_faults", Report.Json.int r.n_faults);
                   ("cells", Report.Json.int r.cells);
                   ("cells_proved", Report.Json.int r.cells_proved);
                   ( "proved_cell_fraction",
                     Report.Json.Number
                       (if r.cells = 0 then 0.0
                        else float_of_int r.cells_proved /. float_of_int r.cells)
                   );
                   ("points", Report.Json.int r.points);
                   ("points_proved", Report.Json.int r.points_proved);
                   ( "proved_point_fraction",
                     Report.Json.Number
                       (if r.points = 0 then 0.0
                        else
                          float_of_int r.points_proved /. float_of_int r.points)
                   );
                   ("skipped_views", Report.Json.int r.skipped_views);
                   ("solves_skipped", Report.Json.int r.solves_skipped);
                   ("certified_seconds", Report.Json.Number r.certified_seconds);
                   ( "uncertified_seconds",
                     Report.Json.Number r.uncertified_seconds );
                   ( "matrices_bitwise_identical",
                     Report.Json.Bool r.identical );
                 ] ))
           rows) );
  ]

let print_rows rows =
  print_endline
    "\n==== CERTIFY: interval-certified campaign verdicts (fixed eps = 0.1) ====\n";
  let header =
    [
      "circuit"; "ppd"; "faults"; "cells proved"; "points proved"; "solves skipped";
      "certified (s)"; "numeric (s)"; "matrices";
    ]
  in
  print_endline
    (Report.Table.render ~header
       (List.map
          (fun r ->
            [
              r.circuit;
              string_of_int r.points_per_decade;
              string_of_int r.n_faults;
              Printf.sprintf "%d/%d" r.cells_proved r.cells;
              (if r.points = 0 then "0/0"
               else
                 Printf.sprintf "%d/%d (%.1f%%)" r.points_proved r.points
                   (100.0 *. float_of_int r.points_proved
                   /. float_of_int r.points));
              string_of_int r.solves_skipped;
              Printf.sprintf "%.3f" r.certified_seconds;
              Printf.sprintf "%.3f" r.uncertified_seconds;
              (if r.identical then "bitwise-identical" else "DIFFER");
            ])
          rows));
  print_endline
    "  (certification trades wall-clock for band-wide certificates; the\n\
    \   gated bigladder row keeps its zeros honest)"

let all ~smoke () =
  let r = rows ~smoke () in
  print_rows r;
  r
