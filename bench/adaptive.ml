(* Coverage-directed campaign benchmarks: how many numeric solves does
   the coarse-to-fine refinement actually avoid, and at what
   wall-clock, with the matrices pinned bitwise to the exhaustive
   sweep?

   Each row runs the same campaign twice — adaptive (the default) and
   exhaustive — and reports the refinement counters (points, certified
   anchors, solves, skips, bisections, degraded rows, plus the
   adaptive.solves_skipped counter of a metrics-enabled rerun), both
   wall-clocks, and the solve reduction factor points/solved. Two
   gates hold the process to the repo's invariants instead of merely
   printing numbers:

   - every row's detect/omega matrices must be bitwise identical
     between the two runs (the refinement is an optimization, never an
     approximation);
   - the full leapfrog5 row at 30 points per decade must keep its
     solve reduction at 3x or better — the headline number; a
     calibration regression (guard, stride, measurement floor) shows
     up here before it shows up as wasted campaign time.

   The bigladder row is fault-sampled like the certify bench's: the
   point of that row is the dead-view behaviour (reconfigurations that
   disconnect the probed output cost zero solves under the measurement
   floor), not raw size. *)

module P = Mcdft_core.Pipeline
module A = Mcdft_core.Adaptive
module M = Testability.Matrix

type row = {
  circuit : string;
  points_per_decade : int;
  n_faults : int;
  rows_scored : int;
  points : int;
  certified : int;
  solved : int;
  skipped : int;
  bisections : int;
  degraded : int;
  solves_skipped : int;
  reduction : float;
  adaptive_seconds : float;
  exhaustive_seconds : float;
  identical : bool;
}

let time_s f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let registry name =
  match Circuits.Registry.find name with
  | Some b -> b
  | None -> failwith ("bench adaptive: missing benchmark " ^ name)

let bigladder ~stages =
  let netlist, output =
    Conformance.Gen.bigladder ~stages (Random.State.make [| 0x5bad; stages |])
  in
  {
    Circuits.Benchmark.name = Printf.sprintf "bigladder-%d" stages;
    description = "big RC double ladder (dead-view refinement check)";
    netlist;
    source = "V1";
    output;
    center_hz = 10_000.0;
  }

let gate ~what ok =
  if not ok then begin
    Printf.eprintf "bench adaptive: GATE FAILED: %s\n" what;
    exit 1
  end

let row ~ppd ?faults ?min_reduction (b : Circuits.Benchmark.t) =
  let run ~adaptive () =
    P.run ~points_per_decade:ppd ?faults ~jobs:1 ~adaptive b
  in
  Obs.Metrics.set_enabled false;
  ignore (run ~adaptive:true ());
  Gc.full_major ();
  let on, adaptive_seconds = time_s (run ~adaptive:true) in
  Gc.full_major ();
  let off, exhaustive_seconds = time_s (run ~adaptive:false) in
  Gc.full_major ();
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  ignore (run ~adaptive:true ());
  Obs.Metrics.set_enabled false;
  let snap = Obs.Metrics.snapshot () in
  Obs.Metrics.reset ();
  let s =
    match on.P.adaptive with
    | Some s -> s
    | None -> failwith "bench adaptive: adaptive run carries no stats"
  in
  let identical =
    on.P.matrix.M.detect = off.P.matrix.M.detect
    && on.P.matrix.M.omega = off.P.matrix.M.omega
  in
  gate
    ~what:
      (Printf.sprintf "%s ppd=%d: adaptive matrices differ from the exhaustive \
                       sweep" b.Circuits.Benchmark.name ppd)
    identical;
  let reduction =
    float_of_int s.A.points /. float_of_int (max 1 s.A.solved)
  in
  Option.iter
    (fun floor ->
      gate
        ~what:
          (Printf.sprintf "%s ppd=%d: solve reduction %.2fx below the %.1fx floor"
             b.Circuits.Benchmark.name ppd reduction floor)
        (reduction >= floor))
    min_reduction;
  {
    circuit = b.Circuits.Benchmark.name;
    points_per_decade = ppd;
    n_faults = List.length on.P.faults;
    rows_scored = s.A.rows;
    points = s.A.points;
    certified = s.A.certified;
    solved = s.A.solved;
    skipped = s.A.skipped;
    bisections = s.A.bisections;
    degraded = s.A.budget_exhausted;
    solves_skipped = Obs.Metrics.counter snap "adaptive.solves_skipped";
    reduction;
    adaptive_seconds;
    exhaustive_seconds;
    identical;
  }

let sampled_faults netlist =
  List.filteri (fun i _ -> i mod 5 = 0) (Fault.deviation_faults netlist)

let rows ~smoke () =
  if smoke then
    [
      row ~ppd:10 (registry "tow-thomas");
      row ~ppd:10 (registry "leapfrog5");
      (let b = bigladder ~stages:40 in
       row ~ppd:4 ~faults:(sampled_faults b.Circuits.Benchmark.netlist) b);
    ]
  else
    [
      row ~ppd:30 (registry "tow-thomas");
      row ~ppd:30 ~min_reduction:3.0 (registry "leapfrog5");
      (let b = bigladder ~stages:100 in
       row ~ppd:6 ~faults:(sampled_faults b.Circuits.Benchmark.netlist) b);
    ]

let to_json rows =
  [
    ( "adaptive",
      Report.Json.Object
        (List.map
           (fun r ->
             ( r.circuit,
               Report.Json.Object
                 [
                   ("points_per_decade", Report.Json.int r.points_per_decade);
                   ("n_faults", Report.Json.int r.n_faults);
                   ("rows", Report.Json.int r.rows_scored);
                   ("points", Report.Json.int r.points);
                   ("certified", Report.Json.int r.certified);
                   ("solved", Report.Json.int r.solved);
                   ("skipped", Report.Json.int r.skipped);
                   ("bisections", Report.Json.int r.bisections);
                   ("degraded_rows", Report.Json.int r.degraded);
                   ("solves_skipped", Report.Json.int r.solves_skipped);
                   ("solve_reduction", Report.Json.Number r.reduction);
                   ("adaptive_seconds", Report.Json.Number r.adaptive_seconds);
                   ( "exhaustive_seconds",
                     Report.Json.Number r.exhaustive_seconds );
                   ("matrices_bitwise_identical", Report.Json.Bool r.identical);
                 ] ))
           rows) );
  ]

let print_rows rows =
  print_endline
    "\n==== ADAPTIVE: coverage-directed campaign refinement ====\n";
  let header =
    [
      "circuit"; "ppd"; "faults"; "solved/points"; "reduction"; "bisections";
      "degraded"; "adaptive (s)"; "exhaustive (s)"; "matrices";
    ]
  in
  print_endline
    (Report.Table.render ~header
       (List.map
          (fun r ->
            [
              r.circuit;
              string_of_int r.points_per_decade;
              string_of_int r.n_faults;
              Printf.sprintf "%d/%d" r.solved r.points;
              Printf.sprintf "%.2fx" r.reduction;
              string_of_int r.bisections;
              string_of_int r.degraded;
              Printf.sprintf "%.3f" r.adaptive_seconds;
              Printf.sprintf "%.3f" r.exhaustive_seconds;
              (if r.identical then "bitwise-identical" else "DIFFER");
            ])
          rows));
  print_endline
    "  (matrices are asserted bitwise identical in-process; the full\n\
    \   leapfrog5 row additionally gates its solve reduction at 3x)"

let all ~smoke () =
  let r = rows ~smoke () in
  print_rows r;
  r
