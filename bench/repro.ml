(* Regeneration of every table and figure of the paper's evaluation.

   Each experiment prints the paper's published values next to the
   values measured on our own substrate (MNA fault simulation of the
   Tow-Thomas biquad).  Section 4's optimization artifacts reproduce
   bit-exactly from the embedded Figure 5 / Table 2 data; the simulated
   column reproduces the qualitative shape (see EXPERIMENTS.md). *)

module O = Mcdft_core.Optimizer
module P = Mcdft_core.Pipeline
module PD = Mcdft_core.Paper_data
module IntSet = Cover.Clause.IntSet

let section id title =
  Printf.printf "\n==== %s: %s ====\n\n" id title

let pct v = Printf.sprintf "%.1f" v
let config_name i = Printf.sprintf "C%d" i
let configs_to_string l = "{" ^ String.concat ", " (List.map config_name l) ^ "}"

let opamps_to_string l =
  "{" ^ String.concat ", " (List.map (fun k -> Printf.sprintf "OP%d" (k + 1)) l) ^ "}"

let term_to_string t =
  String.concat "." (List.map config_name (IntSet.elements t))

let opamp_term_to_string t =
  String.concat "." (List.map (fun k -> Printf.sprintf "OP%d" (k + 1)) (IntSet.elements t))

(* The two data sources: the embedded paper tables, and the simulated
   pipeline on our Tow-Thomas biquad. *)
let paper_input =
  lazy (O.input_of_matrices ~n_opamps:PD.n_opamps PD.detectability_matrix PD.omega_table)

let paper_report = lazy (O.optimize (Lazy.force paper_input))
let sim_pipeline = lazy (P.run (Circuits.Tow_thomas.make ()))
let sim_report = lazy (P.optimize (Lazy.force sim_pipeline))

(* The simulated fault list follows netlist insertion order; permute
   its columns into the paper's fR1..fC2 order so the side-by-side
   tables line up. *)
let sim_column_permutation () =
  let t = Lazy.force sim_pipeline in
  let elements =
    Array.map (fun f -> f.Fault.element) t.P.matrix.Testability.Matrix.faults
  in
  Array.map
    (fun pname ->
      let target = String.sub pname 1 (String.length pname - 1) in
      let found = ref (-1) in
      Array.iteri (fun k e -> if e = target then found := k) elements;
      if !found < 0 then failwith ("no simulated fault for " ^ pname);
      !found)
    PD.fault_names

let permute_cols perm m = Array.map (fun row -> Array.map (fun j -> row.(j)) perm) m

let sim_detect_paper_order () =
  permute_cols (sim_column_permutation ())
    (Lazy.force sim_pipeline).P.matrix.Testability.Matrix.detect

let sim_omega_paper_order () =
  (* percent, like the paper's Table 2 *)
  permute_cols (sim_column_permutation ())
    (Array.map
       (Array.map (fun w -> w *. 100.0))
       (Lazy.force sim_pipeline).P.matrix.Testability.Matrix.omega)

(* ---------- E1: Section 2 / Graph 1 ---------- *)

let graph1 () =
  section "E1" "Initial testability of the biquadratic filter (Graph 1)";
  let rp = Lazy.force paper_report and rs = Lazy.force sim_report in
  Printf.printf "paper:    FC = %s%%   <w-det> = %s%%\n"
    (pct (100.0 *. rp.O.functional_coverage))
    (pct rp.O.functional_avg_omega);
  Printf.printf "measured: FC = %s%%   <w-det> = %s%%\n\n"
    (pct (100.0 *. rs.O.functional_coverage))
    (pct rs.O.functional_avg_omega);
  print_string
    (Report.Chart.bars ~width:40 ~labels:PD.fault_names
       ~series:
         [ ("paper", PD.omega_table.(0)); ("measured", (sim_omega_paper_order ()).(0)) ]
       ())

(* ---------- E2: Table 1 ---------- *)

let table1 () =
  section "E2" "Configuration table (Table 1)";
  let rows =
    List.map
      (fun c ->
        let desc =
          if Multiconfig.Configuration.is_functional c then "Funct. Conf"
          else if Multiconfig.Configuration.is_transparent c then "Transp. Conf"
          else "New Test Conf"
        in
        [ Multiconfig.Configuration.label c; Multiconfig.Configuration.vector c; desc ])
      (Multiconfig.Configuration.all ~n_opamps:3)
  in
  print_endline (Report.Table.render ~header:[ "Conf"; "Vector"; "Description" ] rows)

(* ---------- E3: Figure 5 ---------- *)

let detect_matrix_rows detect =
  Array.to_list
    (Array.mapi
       (fun i row ->
         config_name i
         :: Array.to_list (Array.map (fun b -> if b then "1" else "0") row))
       detect)

let figure5 () =
  section "E3" "Fault detectability matrix (Figure 5)";
  let header names = "" :: Array.to_list names in
  print_endline "paper:";
  print_endline
    (Report.Table.render ~header:(header PD.fault_names)
       (detect_matrix_rows PD.detectability_matrix));
  Printf.printf "\nmeasured (criterion: process envelope, tol 4%%, floor 2%%):\n";
  print_endline
    (Report.Table.render ~header:(header PD.fault_names)
       (detect_matrix_rows (sim_detect_paper_order ())));
  let rp = Lazy.force paper_report and rs = Lazy.force sim_report in
  Printf.printf "\nmax fault coverage: paper %s%%, measured %s%%\n"
    (pct (100.0 *. rp.O.max_coverage))
    (pct (100.0 *. rs.O.max_coverage))

(* ---------- E4: Table 2 ---------- *)

let omega_rows omega =
  Array.to_list
    (Array.mapi
       (fun i row ->
         config_name i :: Array.to_list (Array.map (fun w -> pct w) row))
       omega)

let table2 () =
  section "E4" "w-detectability table (Table 2), values in %";
  print_endline "paper:";
  print_endline
    (Report.Table.render
       ~header:("" :: Array.to_list PD.fault_names)
       (omega_rows PD.omega_table));
  print_endline "\nmeasured:";
  print_endline
    (Report.Table.render
       ~header:("" :: Array.to_list PD.fault_names)
       (omega_rows (sim_omega_paper_order ())))

(* ---------- E5: Graph 2 ---------- *)

let graph2 () =
  section "E5" "w-detectability, initial vs DFT-modified (Graph 2)";
  let best input j =
    List.fold_left
      (fun acc i -> Float.max acc input.O.omega.(i).(j))
      0.0
      (List.init (Array.length input.O.detect) Fun.id)
  in
  let per_fault input =
    Array.init (Array.length PD.fault_names) (fun j -> best input j)
  in
  let rp = Lazy.force paper_report and rs = Lazy.force sim_report in
  print_endline "paper:";
  print_string
    (Report.Chart.bars ~width:40 ~labels:PD.fault_names
       ~series:
         [
           ("initial", PD.omega_table.(0));
           ("DFT", per_fault (Lazy.force paper_input));
         ]
       ());
  Printf.printf "  <w-det>: %s%% -> %s%%\n\n" (pct rp.O.functional_avg_omega)
    (pct rp.O.brute_force_avg_omega);
  print_endline "measured:";
  let so = sim_omega_paper_order () in
  let best_col j =
    Array.fold_left (fun acc row -> Float.max acc row.(j)) 0.0 so
  in
  print_string
    (Report.Chart.bars ~width:40 ~labels:PD.fault_names
       ~series:
         [
           ("initial", so.(0));
           ("DFT", Array.init (Array.length PD.fault_names) best_col);
         ]
       ());
  Printf.printf "  <w-det>: %s%% -> %s%%\n" (pct rs.O.functional_avg_omega)
    (pct rs.O.brute_force_avg_omega)

(* ---------- E6: Section 4.1 ---------- *)

let xi_expression () =
  section "E6" "Fundamental requirement: the xi covering expression (Sec. 4.1)";
  let dump label (r : O.report) =
    Printf.printf "%s:\n" label;
    Printf.printf "  xi          = %s\n" (Format.asprintf "%a" Cover.Clause.pp r.O.xi);
    Printf.printf "  essential   = %s\n" (configs_to_string r.O.essential);
    Printf.printf "  xi_reduced  = %s\n"
      (Format.asprintf "%a" Cover.Clause.pp r.O.xi_reduced);
    (match r.O.xi_terms_raw with
    | Some terms ->
        Printf.printf "  xi (SOP)    = %s\n"
          (String.concat " + " (List.map term_to_string terms))
    | None -> ());
    print_newline ()
  in
  dump "paper" (Lazy.force paper_report);
  dump "measured" (Lazy.force sim_report)

(* ---------- E7: Section 4.2 / Graph 3 ---------- *)

let graph3 () =
  section "E7" "Configuration-number optimization (Sec. 4.2, Graph 3)";
  let dump label (r : O.report) input =
    Printf.printf "%s:\n" label;
    Printf.printf "  minimal sets       = %s\n"
      (String.concat "  "
         (List.map (fun s -> configs_to_string (IntSet.elements s)) r.O.min_config_sets));
    List.iter
      (fun s ->
        let configs = IntSet.elements s in
        Printf.printf "  <w-det> of %s = %s%%\n" (configs_to_string configs)
          (pct (O.avg_omega_of input configs)))
      r.O.min_config_sets;
    Printf.printf "  3rd-order choice   = %s (<w-det> = %s%%)\n\n"
      (configs_to_string r.O.choice_a.O.configs)
      (pct r.O.choice_a.O.avg_omega)
  in
  dump "paper" (Lazy.force paper_report) (Lazy.force paper_input);
  dump "measured" (Lazy.force sim_report) (Lazy.force sim_pipeline).P.input;
  (* quantitative refinement of the 2nd-order objective: estimated test
     time of each tied set, settling + measurement model *)
  let t = Lazy.force sim_pipeline in
  let sets =
    List.map IntSet.elements (Lazy.force sim_report).O.min_config_sets
  in
  print_endline "measured, estimated test time of the tied minimal sets:";
  List.iter
    (fun (configs, seconds) ->
      Printf.printf "  %s: %.1f ms\n" (configs_to_string configs) (seconds *. 1e3))
    (Mcdft_core.Test_time.compare_sets t sets);
  print_newline ();
  (* Graph 3 proper: initial vs brute force vs optimized, per fault *)
  let r = Lazy.force paper_report in
  let input = Lazy.force paper_input in
  let per_fault views =
    Array.init (Array.length PD.fault_names) (fun j ->
        List.fold_left (fun acc i -> Float.max acc input.O.omega.(i).(j)) 0.0 views)
  in
  print_endline "paper, per fault:";
  print_string
    (Report.Chart.bars ~width:40 ~labels:PD.fault_names
       ~series:
         [
           ("no DFT", PD.omega_table.(0));
           ("brute", per_fault (List.init 7 Fun.id));
           ("optim", per_fault r.O.choice_a.O.configs);
         ]
       ())

(* ---------- E8: Section 4.3, Table 3 and xi* ---------- *)

let table3_xi_star () =
  section "E8" "Configurable-opamp optimization (Sec. 4.3, Table 3)";
  print_endline "mapping table (configuration -> required configurable opamps):";
  let rows =
    List.map
      (fun c ->
        let i = Multiconfig.Configuration.index c in
        let ops = IntSet.elements (Cover.Mapping.opamps_of_config i) in
        [ config_name i; (if ops = [] then "-" else String.concat " " (List.map (fun k -> Printf.sprintf "Op%d" (k + 1)) ops)) ])
      (Multiconfig.Configuration.test_configurations ~n_opamps:3)
  in
  print_endline (Report.Table.render ~header:[ "Conf"; "Conf Op" ] rows);
  let dump label (r : O.report) =
    Printf.printf "\n%s:\n" label;
    (match r.O.xi_star with
    | Some terms ->
        Printf.printf "  xi* = %s\n"
          (String.concat " + " (List.map opamp_term_to_string terms))
    | None -> ());
    Printf.printf "  minimal opamp sets = %s\n"
      (String.concat "  "
         (List.map (fun s -> opamps_to_string (IntSet.elements s)) r.O.min_opamp_sets));
    Printf.printf "  chosen             = %s\n" (opamps_to_string r.O.choice_b.O.opamps)
  in
  dump "paper" (Lazy.force paper_report);
  dump "measured" (Lazy.force sim_report)

(* ---------- E9: Table 4 / Graph 4 ---------- *)

let graph4 () =
  section "E9" "Partial DFT (Table 4, Graph 4)";
  let dump label (r : O.report) input fault_names =
    let subset = r.O.choice_b.O.opamps in
    let reachable = r.O.choice_b.O.reachable_configs in
    Printf.printf "%s: configurable opamps %s, %d reachable test configurations\n"
      label (opamps_to_string subset) (List.length reachable);
    let rows =
      List.map
        (fun i ->
          let c = Multiconfig.Configuration.make ~n_opamps:input.O.n_opamps i in
          (Printf.sprintf "%s (%s)" (config_name i)
             (Multiconfig.Configuration.vector_partial ~subset c))
          :: Array.to_list (Array.map pct input.O.omega.(i)))
        reachable
    in
    print_endline
      (Report.Table.render ~header:("" :: Array.to_list fault_names) rows);
    Printf.printf "  <w-det>: full DFT %s%%  ->  partial DFT %s%%\n\n"
      (pct r.O.brute_force_avg_omega)
      (pct r.O.choice_b.O.avg_omega_reachable)
  in
  dump "paper" (Lazy.force paper_report) (Lazy.force paper_input) PD.fault_names;
  let sim_input_paper_order =
    { (Lazy.force sim_pipeline).P.input with O.omega = sim_omega_paper_order () }
  in
  dump "measured" (Lazy.force sim_report) sim_input_paper_order PD.fault_names

(* ---------- X1: benchmark zoo sweep ---------- *)

let zoo_sweep () =
  section "X1" "Extension: the optimization across the benchmark zoo";
  Printf.printf
    "(criterion: process envelope tol 4%% floor 2%%; +20%% deviation faults; exact solvers)\n\n";
  let rows =
    List.filter_map
      (fun (b : Circuits.Benchmark.t) ->
        let t0 = Unix.gettimeofday () in
        match P.run ~points_per_decade:6 b with
        | exception e ->
            Printf.printf "  %s skipped: %s\n" b.Circuits.Benchmark.name
              (Printexc.to_string e);
            None
        | t ->
            let r = P.optimize ~petrick_limit:4 t in
            let dt = Unix.gettimeofday () -. t0 in
            Some
              [
                b.Circuits.Benchmark.name;
                string_of_int (Circuits.Benchmark.opamp_count b);
                string_of_int (Circuits.Benchmark.passive_count b);
                pct (100.0 *. r.O.functional_coverage);
                pct (100.0 *. r.O.max_coverage);
                string_of_int (List.length r.O.choice_a.O.configs);
                string_of_int (List.length r.O.choice_b.O.opamps);
                Printf.sprintf "%.2f" dt;
              ])
      (Circuits.Registry.all ())
  in
  print_endline
    (Report.Table.render
       ~header:
         [ "circuit"; "opamps"; "passives"; "FC0 %"; "FCmax %"; "|S_A|"; "|S_B|"; "t (s)" ]
       rows)

(* ---------- X2: covering-solver ablation ---------- *)

let cover_ablation () =
  section "X2" "Ablation: exact branch-and-bound vs greedy vs Petrick";
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, (Unix.gettimeofday () -. t0) *. 1e6)
  in
  let on_problem label p =
    let exact, te = time (fun () -> Cover.Solver.(cover_exn (exact p))) in
    let greedy, tg = time (fun () -> Cover.Solver.(cover_exn (greedy p))) in
    [
      label;
      string_of_int (IntSet.cardinal exact);
      Printf.sprintf "%.0f" te;
      string_of_int (IntSet.cardinal greedy);
      Printf.sprintf "%.0f" tg;
    ]
  in
  let paper_problem = Cover.Clause.of_matrix PD.detectability_matrix in
  let random_problem ~n ~m ~density seed =
    let st = Random.State.make [| seed |] in
    let d =
      Array.init n (fun _ -> Array.init m (fun _ -> Random.State.float st 1.0 < density))
    in
    for j = 0 to m - 1 do
      if not (Array.exists (fun row -> row.(j)) d) then
        d.(Random.State.int st n).(j) <- true
    done;
    Cover.Clause.of_matrix d
  in
  let rows =
    on_problem "paper biquad (7x8)" paper_problem
    :: List.map
         (fun (n, m, density, seed) ->
           on_problem
             (Printf.sprintf "random %dx%d d=%.1f" n m density)
             (random_problem ~n ~m ~density seed))
         [
           (15, 30, 0.2, 11); (15, 30, 0.4, 12); (31, 60, 0.15, 13);
           (31, 60, 0.3, 14); (63, 100, 0.1, 15);
         ]
  in
  print_endline
    (Report.Table.render
       ~header:[ "instance"; "|exact|"; "t_exact us"; "|greedy|"; "t_greedy us" ]
       rows);
  (* greedy sub-optimality count over many random instances *)
  let trials = 200 in
  let suboptimal = ref 0 in
  for seed = 0 to trials - 1 do
    let p = random_problem ~n:12 ~m:20 ~density:0.25 seed in
    let e = Cover.Solver.(cover_exn (exact p)) and g = Cover.Solver.(cover_exn (greedy p)) in
    if IntSet.cardinal g > IntSet.cardinal e then incr suboptimal
  done;
  Printf.printf "\ngreedy sub-optimal on %d/%d random 12x20 instances\n" !suboptimal trials

(* ---------- X3: criterion sensitivity ---------- *)

let epsilon_sweep () =
  section "X3" "Extension: coverage vs detection criterion on the biquad";
  let b = Circuits.Tow_thomas.make () in
  let rows =
    List.map
      (fun eps ->
        let t =
          P.run ~criterion:(Testability.Detect.Fixed_tolerance eps) ~points_per_decade:10 b
        in
        let r = P.optimize t in
        [
          Printf.sprintf "fixed eps = %.0f%%" (eps *. 100.0);
          pct (100.0 *. r.O.functional_coverage);
          pct (100.0 *. r.O.max_coverage);
          string_of_int (List.length r.O.choice_a.O.configs);
        ])
      [ 0.02; 0.05; 0.10; 0.15; 0.20; 0.30; 0.50 ]
    @ List.map
        (fun tol ->
          let t =
            P.run
              ~criterion:
                (Testability.Detect.Process_envelope { component_tol = tol; floor = 0.02 })
              ~points_per_decade:10 b
          in
          let r = P.optimize t in
          [
            Printf.sprintf "envelope tol = %.0f%%" (tol *. 100.0);
            pct (100.0 *. r.O.functional_coverage);
            pct (100.0 *. r.O.max_coverage);
            string_of_int (List.length r.O.choice_a.O.configs);
          ])
        [ 0.02; 0.04; 0.06 ]
  in
  print_endline
    (Report.Table.render ~header:[ "criterion"; "FC0 %"; "FCmax %"; "|S_A|" ] rows);
  (* catastrophic faults: opens and shorts are loud *)
  let t =
    P.run ~points_per_decade:10
      ~faults:(Fault.catastrophic_faults b.Circuits.Benchmark.netlist)
      b
  in
  let r = P.optimize t in
  Printf.printf
    "\ncatastrophic faults (envelope criterion): FC0 = %s%%, FCmax = %s%%\n"
    (pct (100.0 *. r.O.functional_coverage))
    (pct (100.0 *. r.O.max_coverage))

(* ---------- X4: finite-GBW followers ---------- *)

let follower_bandwidth () =
  section "X4" "Ablation: finite-bandwidth configurable opamps";
  Printf.printf
    "The paper assumes follower mode propagates the test input unchanged\n\
     (\"assuming the opamp bandwidth limitation is not reached\"). Emulating\n\
     followers as real unity-feedback buffers quantifies that assumption\n\
     for the 1 kHz biquad:\n\n";
  let b = Circuits.Tow_thomas.make () in
  let row label follower_model =
    let t = P.run ?follower_model ~points_per_decade:10 b in
    let r = P.optimize t in
    [
      label;
      pct (100.0 *. r.O.max_coverage);
      pct r.O.brute_force_avg_omega;
      string_of_int (List.length r.O.choice_a.O.configs);
    ]
  in
  let rows =
    row "ideal follower" None
    :: List.map
         (fun gbw_hz ->
           let model =
             Circuit.Element.Single_pole { dc_gain = 1e5; pole_hz = gbw_hz /. 1e5 }
           in
           row (Printf.sprintf "GBW = %s" (Util.Quantity.to_string gbw_hz)) (Some model))
         [ 10e6; 1e6; 100e3; 10e3 ]
  in
  print_endline
    (Report.Table.render ~header:[ "follower"; "FCmax %"; "<w-det> %"; "|S_A|" ] rows)

(* ---------- X5: test plan ---------- *)

let test_plan () =
  section "X5" "Extension: minimal measurement schedule (frequency ATPG)";
  let t = Lazy.force sim_pipeline in
  let plan = Mcdft_core.Test_plan.build t in
  print_string (Mcdft_core.Test_plan.to_string plan);
  let brute_measurements =
    Testability.Grid.n_points t.P.grid
    * Array.length t.P.matrix.Testability.Matrix.detect
  in
  Printf.printf
    "\nvs. exhaustive testing: %d measurements (full grid x all configurations)\n"
    brute_measurements;
  let diag = Mcdft_core.Test_plan.build_diagnostic t in
  Printf.printf
    "\ndiagnosis-oriented schedule (also separates every separable fault pair):\n\
     %d measurements\n"
    (List.length diag.Mcdft_core.Test_plan.measurements)

(* ---------- X6: Monte-Carlo false alarms ---------- *)

let montecarlo () =
  section "X6" "Extension: good-circuit variation vs the fixed-eps test";
  let b = Circuits.Tow_thomas.make () in
  let grid = Testability.Grid.around ~points_per_decade:10 ~center_hz:1000.0 () in
  let probe = { Testability.Detect.source = "Vin"; output = "v2" } in
  Printf.printf
    "200 Monte-Carlo samples of good biquads, all passives uniform +/-tol.\n\
     A fixed-eps magnitude test rejects a good circuit whose natural\n\
     variation exceeds eps somewhere (false alarm):\n\n";
  let rows =
    List.map
      (fun tol ->
        let mc =
          Testability.Montecarlo.run ~samples:200 ~component_tol:tol probe grid
            b.Circuits.Benchmark.netlist
        in
        [
          Printf.sprintf "%.0f%%" (tol *. 100.0);
          pct (100.0 *. Testability.Montecarlo.false_alarm_rate mc ~epsilon:0.05);
          pct (100.0 *. Testability.Montecarlo.false_alarm_rate mc ~epsilon:0.10);
          pct (100.0 *. Testability.Montecarlo.false_alarm_rate mc ~epsilon:0.20);
        ])
      [ 0.01; 0.02; 0.05; 0.10 ]
  in
  print_endline
    (Report.Table.render
       ~header:[ "comp tol"; "FA% @ eps=5%"; "FA% @ eps=10%"; "FA% @ eps=20%" ]
       rows)

(* ---------- X7: diagnosability ---------- *)

let diagnosability () =
  section "X7" "Extension: fault diagnosability with and without reconfiguration";
  let t = Lazy.force sim_pipeline in
  let row label configs =
    let d = Diagnosis.Dictionary.build ?configs t in
    let groups = Diagnosis.Dictionary.ambiguity_groups d in
    [
      label;
      string_of_int (List.length groups);
      pct (100.0 *. Diagnosis.Dictionary.resolution d);
    ]
  in
  let r = Lazy.force sim_report in
  print_endline
    (Report.Table.render
       ~header:[ "measurement space"; "ambiguity groups"; "resolution %" ]
       [
         row "C0 only (no DFT)" (Some [ 0 ]);
         row "optimal 2-config set" (Some r.O.choice_a.O.configs);
         row "all 7 configurations" None;
       ]);
  Printf.printf
    "\n(resolution = share of detectable faults with a unique signature)\n"

(* ---------- X9: parametric fault-size resolution ---------- *)

let fault_resolution () =
  section "X9" "Extension: smallest detectable deviation per component";
  Printf.printf
    "Bisection on the deviation size: the smallest +x%% fault the test\n\
     detects (envelope criterion). Reconfiguration shrinks the blind\n\
     spot dramatically for the loop-hidden components:\n\n";
  let t = Lazy.force sim_pipeline in
  let b = t.P.benchmark in
  let grid = t.P.grid in
  let criterion = t.P.criterion in
  let probe =
    { Testability.Detect.source = b.Circuits.Benchmark.source;
      output = b.Circuits.Benchmark.output }
  in
  let fmt = function
    | Some f -> Printf.sprintf "%+.1f%%" ((f -. 1.0) *. 100.0)
    | None -> ">900%"
  in
  let dft = t.P.dft in
  let best_config_for j =
    (* the configuration with the highest omega for this fault *)
    let best = ref 0 and best_w = ref (-1.0) in
    Array.iteri
      (fun i _ ->
        if t.P.matrix.Testability.Matrix.omega.(i).(j) > !best_w then begin
          best_w := t.P.matrix.Testability.Matrix.omega.(i).(j);
          best := i
        end)
      t.P.matrix.Testability.Matrix.detect;
    !best
  in
  let rows =
    List.mapi
      (fun j fault ->
        let element = fault.Fault.element in
        let in_c0 =
          Testability.Detect.minimal_detectable_deviation ~criterion probe grid
            b.Circuits.Benchmark.netlist ~element
        in
        let ci = best_config_for j in
        let view =
          Multiconfig.Transform.emulate dft
            (Multiconfig.Configuration.make
               ~n_opamps:(Multiconfig.Transform.n_opamps dft) ci)
        in
        let in_best =
          Testability.Detect.minimal_detectable_deviation ~criterion probe grid view
            ~element
        in
        [ element; fmt in_c0; Printf.sprintf "C%d" ci; fmt in_best ])
      t.P.faults
  in
  print_endline
    (Report.Table.render
       ~header:[ "component"; "min fault in C0"; "best conf"; "min fault there" ]
       rows)

(* ---------- X8: structural prefiltering (the paper's future work) ---------- *)

let prefilter () =
  section "X8" "Future work implemented: structural configuration pre-selection";
  Printf.printf
    "The paper's conclusion proposes selecting simulation candidates from\n\
     structural information. A sound influence analysis marks the\n\
     (configuration, fault) pairs that cannot interact; their faulty\n\
     sweeps are skipped and the matrix is provably unchanged:\n\n";
  let rows =
    List.map
      (fun (b : Circuits.Benchmark.t) ->
        let t0 = Unix.gettimeofday () in
        let full = P.run ~points_per_decade:6 b in
        let t_full = Unix.gettimeofday () -. t0 in
        let t1 = Unix.gettimeofday () in
        let plan, pruned = Mcdft_core.Prefilter.run ~points_per_decade:6 b in
        let t_pruned = Unix.gettimeofday () -. t1 in
        let same = full.P.matrix.Testability.Matrix.detect = pruned.Testability.Matrix.detect in
        [
          b.Circuits.Benchmark.name;
          Printf.sprintf "%d" plan.Mcdft_core.Prefilter.total_pairs;
          Printf.sprintf "%d" plan.Mcdft_core.Prefilter.pruned_pairs;
          (if same then "yes" else "NO");
          Printf.sprintf "%.2f" t_full;
          Printf.sprintf "%.2f" t_pruned;
        ])
      [ Circuits.Tow_thomas.make (); Circuits.Khn.make (); Circuits.Cascade.tow_thomas_pair () ]
  in
  print_endline
    (Report.Table.render
       ~header:[ "circuit"; "pairs"; "pruned"; "matrix same"; "t full (s)"; "t pruned (s)" ]
       rows)

(* ---------- X10: embedded block access ---------- *)

let block_access () =
  section "X10" "The paper's Sec. 1 motivation: embedded-block access";
  Printf.printf
    "Testing each opamp stage through its access configuration (every\n\
     other opamp transparent) vs in situ at the functional output:\n\n";
  let t = Lazy.force sim_pipeline in
  let rows =
    List.map
      (fun (r : Mcdft_core.Block_access.report) ->
        [
          Printf.sprintf "OP%d" (r.Mcdft_core.Block_access.but + 1);
          Multiconfig.Configuration.label r.Mcdft_core.Block_access.access;
          string_of_int (List.length r.Mcdft_core.Block_access.faults_in_scope);
          pct (100.0 *. r.Mcdft_core.Block_access.coverage_functional);
          pct (100.0 *. r.Mcdft_core.Block_access.coverage_access);
        ])
      (Mcdft_core.Block_access.per_opamp t)
  in
  print_endline
    (Report.Table.render
       ~header:[ "block"; "access conf"; "faults in scope"; "in-situ FC %"; "access FC %" ]
       rows)

(* ---------- X11: robustness of the optimum across designs ---------- *)

let q_robustness () =
  section "X11" "Extension: is the optimal DFT stable across filter designs?";
  Printf.printf
    "The same Tow-Thomas topology tuned to different quality factors:\n\n";
  let rows =
    List.map
      (fun q ->
        let params = Circuits.Tow_thomas.params_for ~q ~f0_hz:1000.0 () in
        let b = Circuits.Tow_thomas.make ~params () in
        let t = P.run ~points_per_decade:10 b in
        let r = P.optimize t in
        [
          Printf.sprintf "Q = %.2f" q;
          pct (100.0 *. r.O.functional_coverage);
          pct (100.0 *. r.O.max_coverage);
          String.concat "," (List.map (Printf.sprintf "C%d") r.O.choice_a.O.configs);
          String.concat ","
            (List.map (fun k -> Printf.sprintf "OP%d" (k + 1)) r.O.choice_b.O.opamps);
        ])
      [ 0.5; 0.71; 1.0; 1.5; 2.5 ]
  in
  print_endline
    (Report.Table.render
       ~header:[ "design"; "FC0 %"; "FCmax %"; "choice A"; "choice B" ]
       rows)

let all () =
  print_endline "Multi-configuration DFT for analog circuits - reproduction harness";
  print_endline "paper: Renovell, Azais, Bertrand - DATE 1998";
  graph1 ();
  table1 ();
  figure5 ();
  table2 ();
  graph2 ();
  xi_expression ();
  graph3 ();
  table3_xi_star ();
  graph4 ();
  zoo_sweep ();
  cover_ablation ();
  epsilon_sweep ();
  follower_bandwidth ();
  test_plan ();
  montecarlo ();
  diagnosability ();
  prefilter ();
  fault_resolution ();
  block_access ();
  q_robustness ()
